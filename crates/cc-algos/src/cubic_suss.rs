//! CUBIC + SUSS: the paper's contribution, integrated exactly as §5
//! describes — SUSS augments CUBIC's slow start and leaves congestion
//! avoidance untouched.
//!
//! Responsibilities are split three ways:
//!
//! * `suss-core` decides *when* to accelerate (growth factor, modified
//!   HyStart) and *how* the extra data must be shaped (guard, rate,
//!   duration);
//! * this controller *executes* the plan: it arms a timer for the guard
//!   interval, then raises cwnd step-by-step at the pacing rate (so an
//!   interrupted pacing period never leaves cwnd inflated — §5's
//!   abort-safety property) while exposing `pacing_rate()` to the
//!   transport's token-bucket pacer;
//! * the transport does everything else (ACK clocking happens naturally:
//!   outside pacing periods `pacing_rate()` is `None`).

use crate::cubic::{CubicCore, Nanos};
use std::time::Duration;
use suss_core::{AckEvent, PacingPlan, Suss, SussConfig};
use tcp_sim::cc::{AckView, CcEvent, CongestionControl, LossKind, LossView};

/// Execution state of an active pacing period.
#[derive(Debug, Clone, Copy)]
struct ActivePacing {
    /// Pacing rate, bytes/sec (Eq. 11: cwnd_target / minRTT).
    rate: f64,
    /// cwnd ceiling for this round (G · cwnd_base).
    target: u64,
    /// Hard end of the window.
    end: Nanos,
    /// Next cwnd-increment instant.
    next_tick: Nanos,
}

/// CUBIC with the SUSS slow-start accelerator.
pub struct CubicSuss {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    core: CubicCore,
    suss: Suss,
    /// A plan waiting out its guard interval.
    pending: Option<(Nanos, PacingPlan)>,
    /// The currently executing pacing period.
    active: Option<ActivePacing>,
    /// Highest snd_nxt observed (from on_sent), for blue/red marking.
    last_snd_nxt: u64,
    events: Vec<CcEvent>,
    /// Pacing periods fully completed (diagnostics).
    completed_pacings: u64,
}

impl CubicSuss {
    /// CUBIC+SUSS from `iw` bytes with the given SUSS configuration.
    ///
    /// Use `SussConfig::default()` for the paper's configuration and
    /// `SussConfig::disabled()` for a controller that behaves identically
    /// to plain CUBIC+HyStart but shares this exact code path (the clean
    /// A/B the paper's kernel patch performs with its on/off switch).
    pub fn new(iw: u64, mss: u64, cfg: SussConfig) -> Self {
        CubicSuss {
            mss,
            cwnd: iw,
            ssthresh: u64::MAX,
            core: CubicCore::new(mss),
            suss: Suss::new(cfg, 0, 0, iw),
            pending: None,
            active: None,
            last_snd_nxt: 0,
            events: Vec::new(),
            completed_pacings: 0,
        }
    }

    /// The paper's default configuration (k_max = 1, G ∈ {2,4}).
    pub fn paper(iw: u64, mss: u64) -> Self {
        Self::new(iw, mss, SussConfig::default())
    }

    /// The SUSS state machine (diagnostics).
    pub fn suss(&self) -> &Suss {
        &self.suss
    }

    /// Pacing periods that ran to completion.
    pub fn completed_pacings(&self) -> u64 {
        self.completed_pacings
    }

    fn cancel_pacing(&mut self) {
        if self.active.is_some() {
            self.events.push(CcEvent::PacingRateChanged {
                rate_bps: 0,
                reason: "suss_cancel",
            });
        }
        self.pending = None;
        self.active = None;
    }

    fn exit_slow_start(&mut self) {
        self.ssthresh = self.cwnd;
        self.events.push(CcEvent::SsthreshChanged {
            ssthresh: self.ssthresh,
            reason: "suss_exit",
        });
        self.events.push(CcEvent::HystartPhase {
            phase: "exit",
            reason: "hystart_delay",
        });
        self.suss.on_exit_slow_start();
        self.cancel_pacing();
    }

    fn tick_interval(&self, rate: f64) -> u64 {
        ((self.mss as f64 / rate) * 1e9).max(1.0) as u64
    }
}

impl CongestionControl for CubicSuss {
    fn name(&self) -> &'static str {
        if self.suss.config().enabled {
            "cubic+suss"
        } else {
            "cubic/suss-off"
        }
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn on_ack(&mut self, ack: &AckView) {
        if !self.in_slow_start() {
            if !ack.app_limited {
                let srtt = ack.srtt.unwrap_or(Duration::from_millis(100));
                self.cwnd = self
                    .core
                    .on_ack_ca(ack.now, self.cwnd, ack.newly_acked, srtt);
            }
            return;
        }

        // Feed SUSS before touching cwnd (its documented contract).
        let out = self.suss.on_ack(AckEvent {
            now: ack.now,
            ack_seq: ack.ack_seq,
            rtt: ack.rtt_sample,
            cwnd: self.cwnd,
            snd_nxt: ack.snd_nxt,
        });

        if out.exit_slow_start {
            self.exit_slow_start();
            return;
        }

        if !ack.app_limited {
            self.cwnd += ack.newly_acked;
            if self.cwnd >= self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        }

        if let Some(plan) = out.start_pacing {
            // Arm the guard interval; at most one plan per round can be
            // pending or active.
            if self.pending.is_none() && self.active.is_none() {
                let guard_ns = plan.guard.as_nanos() as u64;
                self.pending = Some((ack.now + guard_ns, plan));
            }
        }
    }

    fn on_congestion_event(&mut self, loss: &LossView) {
        self.suss.on_exit_slow_start();
        self.cancel_pacing();
        match loss.kind {
            LossKind::FastRetransmit => {
                self.cwnd = self.core.on_loss(self.cwnd);
                self.ssthresh = self.cwnd;
                self.events.push(CcEvent::CwndChanged {
                    cwnd: self.cwnd,
                    reason: "loss",
                });
                self.events.push(CcEvent::SsthreshChanged {
                    ssthresh: self.ssthresh,
                    reason: "loss",
                });
            }
            LossKind::Timeout => {
                let reduced = self.core.on_loss(self.cwnd);
                self.ssthresh = reduced;
                self.cwnd = self.mss;
                self.core.reset_epoch();
                self.events.push(CcEvent::CwndChanged {
                    cwnd: self.cwnd,
                    reason: "timeout",
                });
                self.events.push(CcEvent::SsthreshChanged {
                    ssthresh: self.ssthresh,
                    reason: "timeout",
                });
                // SUSS stays dormant after the first slow-start phase; the
                // RTO-restarted slow start is plain doubling to ssthresh.
            }
        }
    }

    fn on_sent(&mut self, _now: Nanos, _bytes: u64, snd_nxt: u64) {
        self.last_snd_nxt = self.last_snd_nxt.max(snd_nxt);
    }

    fn pacing_rate(&self) -> Option<f64> {
        self.active.map(|a| a.rate)
    }

    fn next_timer(&self) -> Option<Nanos> {
        match (&self.pending, &self.active) {
            (Some((start, _)), _) => Some(*start),
            (None, Some(a)) => Some(a.next_tick.min(a.end)),
            (None, None) => None,
        }
    }

    fn on_timer(&mut self, now: Nanos) {
        // Guard expired: begin the pacing period.
        if let Some((start, plan)) = self.pending {
            if now >= start {
                self.pending = None;
                if self.in_slow_start() && self.suss.exp_growth() {
                    self.suss.mark_pacing_started(self.last_snd_nxt);
                    self.events.push(CcEvent::SussPacingStarted {
                        g: plan.growth_factor,
                    });
                    self.events.push(CcEvent::SussRound {
                        round: self.suss.round() as u32,
                        k: plan.growth_factor,
                    });
                    self.events.push(CcEvent::PacingRateChanged {
                        rate_bps: (plan.rate_bytes_per_sec * 8.0) as u64,
                        reason: "suss_pacing",
                    });
                    let dur_ns = plan.duration.as_nanos() as u64;
                    self.active = Some(ActivePacing {
                        rate: plan.rate_bytes_per_sec,
                        target: plan.cwnd_target.max(self.cwnd),
                        end: now + dur_ns,
                        next_tick: now,
                    });
                }
            }
        }
        // Pacing window: grow cwnd gradually at the pacing rate. The
        // transport transmits the extra bytes as cwnd opens, shaped by the
        // token-bucket pacer at the same rate.
        if let Some(mut a) = self.active {
            let tick = self.tick_interval(a.rate);
            while now >= a.next_tick && self.cwnd < a.target && now <= a.end {
                self.cwnd = (self.cwnd + self.mss).min(a.target).min(self.ssthresh);
                a.next_tick += tick;
            }
            if self.cwnd >= a.target || now >= a.end || !self.in_slow_start() {
                if self.cwnd >= a.target {
                    self.completed_pacings += 1;
                }
                self.events.push(CcEvent::PacingRateChanged {
                    rate_bps: 0,
                    reason: "suss_done",
                });
                self.active = None;
            } else {
                self.active = Some(a);
            }
        }
    }

    fn ssthresh(&self) -> Option<u64> {
        (self.ssthresh != u64::MAX).then_some(self.ssthresh)
    }

    fn take_events(&mut self) -> Vec<CcEvent> {
        std::mem::take(&mut self.events)
    }

    fn bind_metrics(&mut self, registry: &simtrace::Registry) {
        self.suss.bind_metrics(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1_448;
    const IW: u64 = 10 * MSS;
    const RTT_NS: u64 = 100_000_000;

    /// Drive the controller over synthetic clean-path slow-start rounds,
    /// executing its timers, like the transport would.
    struct Drive {
        cc: CubicSuss,
        acked: u64,
        snd_nxt: u64,
        now: Nanos,
    }

    impl Drive {
        fn new(cfg: SussConfig) -> Self {
            let mut cc = CubicSuss::new(IW, MSS, cfg);
            cc.on_sent(0, IW, IW);
            Drive {
                cc,
                acked: 0,
                snd_nxt: IW,
                now: 0,
            }
        }

        fn run_timers_until(&mut self, t: Nanos) {
            while let Some(at) = self.cc.next_timer() {
                if at > t {
                    break;
                }
                self.cc.on_timer(at.max(self.now));
                // Model the transport sending whatever the new cwnd allows.
                let cwnd = self.cc.cwnd();
                let outstanding = self.snd_nxt - self.acked;
                if cwnd > outstanding {
                    self.snd_nxt += cwnd - outstanding;
                    self.cc.on_sent(at, cwnd - outstanding, self.snd_nxt);
                }
            }
            self.now = t;
        }

        /// One round of tightly spaced ACKs at `round_start`.
        fn round(&mut self, round_start: Nanos, spacing: Nanos, rtt_ns: u64) {
            self.run_timers_until(round_start);
            let to_ack = self.snd_nxt - self.acked;
            let n = (to_ack / MSS).max(1);
            for k in 0..n {
                let now = round_start + k * spacing;
                self.run_timers_until(now);
                self.acked += MSS.min(to_ack);
                self.cc.on_ack(&AckView {
                    now,
                    ack_seq: self.acked,
                    newly_acked: MSS,
                    rtt_sample: Some(Duration::from_nanos(rtt_ns)),
                    srtt: Some(Duration::from_nanos(rtt_ns)),
                    min_rtt: Some(Duration::from_nanos(rtt_ns)),
                    inflight: self.snd_nxt - self.acked,
                    snd_nxt: self.snd_nxt,
                    delivered: self.acked,
                    app_limited: false,
                });
                // ACK clocking: send what cwnd allows.
                let cwnd = self.cc.cwnd();
                let outstanding = self.snd_nxt - self.acked;
                if cwnd > outstanding {
                    self.snd_nxt += cwnd - outstanding;
                    self.cc.on_sent(now, cwnd - outstanding, self.snd_nxt);
                }
            }
        }
    }

    #[test]
    fn suss_on_quadruples_early_round() {
        let mut d = Drive::new(SussConfig::default());
        d.round(RTT_NS, 100_000, RTT_NS);
        // Execute the pacing window.
        d.run_timers_until(2 * RTT_NS);
        assert_eq!(d.cc.suss().last_growth_factor(), 4);
        // After round 2 with G=4, cwnd should reach 4·iw (vs 2·iw plain).
        assert!(
            d.cc.cwnd() >= 4 * IW,
            "cwnd {} should reach 4·iw {}",
            d.cc.cwnd(),
            4 * IW
        );
        assert_eq!(d.cc.completed_pacings(), 1);
        let evs = d.cc.take_events();
        assert!(evs.contains(&CcEvent::SussPacingStarted { g: 4 }));
    }

    #[test]
    fn suss_off_doubles_exactly() {
        let mut d = Drive::new(SussConfig::disabled());
        d.round(RTT_NS, 100_000, RTT_NS);
        d.run_timers_until(2 * RTT_NS);
        assert_eq!(d.cc.cwnd(), 2 * IW, "traditional slow start doubles");
        assert_eq!(d.cc.completed_pacings(), 0);
        assert_eq!(d.cc.name(), "cubic/suss-off");
    }

    #[test]
    fn growth_compounds_across_rounds() {
        let mut d = Drive::new(SussConfig::default());
        d.round(RTT_NS, 100_000, RTT_NS);
        d.round(2 * RTT_NS, 100_000, RTT_NS);
        d.run_timers_until(3 * RTT_NS);
        // Paper Fig. 4/6: after two accelerated rounds cwnd = 16·iw.
        assert!(
            d.cc.cwnd() >= 12 * IW,
            "two G=4 rounds should approach 16·iw, got {}x",
            d.cc.cwnd() / IW
        );
    }

    #[test]
    fn loss_cancels_pacing_and_exits_slow_start() {
        let mut d = Drive::new(SussConfig::default());
        d.round(RTT_NS, 100_000, RTT_NS);
        // A loss arrives before/during the pacing window.
        let cwnd_at_loss = d.cc.cwnd();
        d.cc.on_congestion_event(&LossView {
            now: d.now + 1,
            kind: LossKind::FastRetransmit,
            lost_bytes: MSS,
            inflight: cwnd_at_loss,
        });
        assert!(!d.cc.in_slow_start());
        assert!(d.cc.pacing_rate().is_none());
        assert!(d.cc.next_timer().is_none(), "no stale pacing timers");
        // cwnd reduced multiplicatively from the *uninflated* value.
        assert!(d.cc.cwnd() < cwnd_at_loss);
    }

    #[test]
    fn interrupted_pacing_leaves_cwnd_partial() {
        let mut d = Drive::new(SussConfig::default());
        d.round(RTT_NS, 100_000, RTT_NS);
        // Run only part of the pacing window, then lose.
        let t_partial = RTT_NS + (RTT_NS / 2); // guard + a bit of pacing
        d.run_timers_until(t_partial);
        let cwnd_mid = d.cc.cwnd();
        assert!(
            cwnd_mid < 4 * IW,
            "mid-window cwnd {} must be below target {}",
            cwnd_mid,
            4 * IW
        );
        d.cc.on_congestion_event(&LossView {
            now: t_partial,
            kind: LossKind::FastRetransmit,
            lost_bytes: MSS,
            inflight: cwnd_mid,
        });
        // §5: the abort must not leave cwnd at the full target.
        assert!(d.cc.cwnd() <= cwnd_mid);
    }

    #[test]
    fn congested_path_stays_traditional() {
        let mut d = Drive::new(SussConfig::default());
        // Wide ACK spacing: 10 ACKs × 3 ms = 27 ms train: conditions fail.
        d.round(RTT_NS, 3_000_000, RTT_NS);
        d.run_timers_until(2 * RTT_NS);
        assert_eq!(d.cc.suss().last_growth_factor(), 2);
        assert_eq!(d.cc.cwnd(), 2 * IW);
    }

    #[test]
    fn timeout_collapses_and_disables_suss() {
        let mut d = Drive::new(SussConfig::default());
        d.round(RTT_NS, 100_000, RTT_NS);
        d.cc.on_congestion_event(&LossView {
            now: d.now,
            kind: LossKind::Timeout,
            lost_bytes: MSS,
            inflight: d.cc.cwnd(),
        });
        assert_eq!(d.cc.cwnd(), MSS);
        assert!(d.cc.in_slow_start(), "post-RTO slow start toward ssthresh");
        assert!(!d.cc.suss().exp_growth(), "SUSS dormant after RTO");
    }

    #[test]
    fn ca_phase_uses_cubic() {
        let mut d = Drive::new(SussConfig::default());
        d.round(RTT_NS, 100_000, RTT_NS);
        d.cc.on_congestion_event(&LossView {
            now: d.now,
            kind: LossKind::FastRetransmit,
            lost_bytes: MSS,
            inflight: d.cc.cwnd(),
        });
        let w = d.cc.cwnd();
        // CA acks grow the window slowly (cubic plateau).
        d.cc.on_ack(&AckView {
            now: d.now + RTT_NS,
            ack_seq: d.acked,
            newly_acked: w,
            rtt_sample: Some(Duration::from_nanos(RTT_NS)),
            srtt: Some(Duration::from_nanos(RTT_NS)),
            min_rtt: Some(Duration::from_nanos(RTT_NS)),
            inflight: w,
            snd_nxt: d.snd_nxt,
            delivered: d.acked,
            app_limited: false,
        });
        let grown = d.cc.cwnd();
        assert!(
            grown >= w && grown < w + w / 4,
            "gentle CA growth, got {w} -> {grown}"
        );
    }
}
