//! # suss-bench — the benchmark harness
//!
//! One binary per table/figure of the paper (DESIGN.md §3 maps each id to
//! its experiment module), plus Criterion micro/macro benches.
//!
//! Every binary accepts `--quick` to run the scaled-down parameter set
//! (useful for smoke tests; the default is the full paper-scale run) and
//! `--csv` to emit machine-readable output after the human-readable
//! table. All experiments run as simrunner campaigns, so every binary
//! also accepts the parallel-execution flags (`--workers`, `--no-cache`,
//! `--cold`, `--no-progress`), the executor flags (`--executor
//! pool|steal`, `--shards N` to coordinate N shard child processes,
//! `--shard K/N` to run one shard, `--merge-shards N` to merge
//! already-written shard manifests, `--shard-lease-ms N` /
//! `--shard-restarts N` to tune the coordinator's heartbeat lease and
//! dead-shard restart budget), caches results under `results/cache/`,
//! and writes a run manifest to `results/<name>.manifest.json`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use netsim::{Agent, Ctx, EngineConfig, Packet, Sim, SimTime};
use simrunner::{ExecSpec, RunManifest, RunnerOpts};
use std::any::Any;
use std::path::PathBuf;
use std::time::Duration;

/// Synthetic scheduler workload for the event-queue microbench: one agent
/// keeps `pending` timers armed at all times, re-arming each as it fires
/// with a deterministic pseudo-random delay (1 µs – 300 ms, so the far tail
/// also exercises the wheel's overflow level). The event queue is the only
/// non-trivial work, which isolates per-event scheduler cost.
///
/// Returns the number of events dispatched (≥ `events`), so callers can
/// fold it into a benchmark result and keep the optimizer honest.
pub fn timer_churn(engine: EngineConfig, pending: u64, events: u64) -> u64 {
    struct Churn {
        pending: u64,
        lcg: u64,
    }
    impl Churn {
        fn next_delay(&mut self) -> Duration {
            // SplitMix64-style step; cheap and deterministic.
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Duration::from_nanos(1_000 + (self.lcg >> 16) % 300_000_000)
        }
    }
    impl Agent for Churn {
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
            let d = self.next_delay();
            ctx.set_timer(ctx.now() + d, token);
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for token in 0..self.pending {
                let d = self.next_delay();
                ctx.set_timer(ctx.now() + d, token);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let mut sim = Sim::with_engine(7, engine);
    sim.add_agent(Box::new(Churn {
        pending,
        lcg: 0x9E37_79B9_7F4A_7C15,
    }));
    sim.run_while(SimTime::from_secs(86_400), |s| {
        s.events_dispatched() < events
    });
    sim.events_dispatched()
}

/// The shared command line of every figure/table/ablation binary.
///
/// Construct with [`BenchCli::parse`], passing the binary's artifact name
/// once; the manifest and trace paths (`results/<name>.manifest.json`,
/// `results/<name>.trace.jsonl`) derive from it, so binaries never thread
/// their own name through each call.
#[derive(Debug, Clone)]
pub struct BenchCli {
    /// Artifact name (manifest/trace file stem under `results/`).
    name: &'static str,
    /// Run the scaled-down parameter set.
    pub quick: bool,
    /// Also emit CSV.
    pub csv: bool,
    /// Worker threads for campaign execution (0 = all cores).
    pub workers: usize,
    /// Disable the result cache.
    pub no_cache: bool,
    /// Ignore existing cache entries (results are still stored back).
    pub cold: bool,
    /// Suppress the stderr progress stream.
    pub no_progress: bool,
    /// Structured JSONL trace output, from `--trace [path]` or
    /// `SUSS_TRACE=path`. An empty path means "trace to the default
    /// `results/<name>.trace.jsonl`" — resolve it with
    /// [`BenchCli::trace_path`].
    pub trace: Option<PathBuf>,
    /// Local executor from `--executor pool|steal` (pool when absent).
    pub steal: bool,
    /// Coordinate N shard child processes (`--shards N`).
    pub shards: Option<usize>,
    /// Run as one shard of a split campaign (`--shard K/N`).
    pub shard: Option<(usize, usize)>,
    /// Merge already-written shard manifests (`--merge-shards N`).
    pub merge_shards: Option<usize>,
    /// Coordinator heartbeat lease in milliseconds (`--shard-lease-ms N`;
    /// 0 disables lease monitoring).
    pub shard_lease_ms: Option<u64>,
    /// Per-shard restart budget for dead shard children
    /// (`--shard-restarts N`).
    pub shard_restarts: Option<u32>,
    /// The arguments a shard child should re-run with: this invocation's
    /// argv minus the shard-orchestration flags.
    child_args: Vec<String>,
}

impl BenchCli {
    /// Parse `std::env::args` for the binary publishing artifacts under
    /// `results/<name>.*`.
    pub fn parse(name: &'static str) -> Self {
        let mut o = BenchCli {
            name,
            quick: false,
            csv: false,
            workers: 0,
            no_cache: false,
            cold: false,
            no_progress: false,
            trace: None,
            steal: false,
            shards: None,
            shard: None,
            merge_shards: None,
            shard_lease_ms: None,
            shard_restarts: None,
            child_args: Vec::new(),
        };
        let mut args = std::env::args().skip(1).peekable();
        // Keep every argument a shard child should inherit; the
        // orchestration flags themselves must not recurse into children.
        let keep = |o: &mut BenchCli, a: &str| o.child_args.push(a.to_string());
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => {
                    o.quick = true;
                    keep(&mut o, "--quick");
                }
                "--csv" => {
                    o.csv = true;
                    keep(&mut o, "--csv");
                }
                "--workers" => {
                    o.workers = match args.next().and_then(|v| v.parse().ok()) {
                        Some(w) => w,
                        None => {
                            eprintln!("--workers needs a number");
                            std::process::exit(2);
                        }
                    };
                    keep(&mut o, "--workers");
                    let w = o.workers.to_string();
                    keep(&mut o, &w);
                }
                "--no-cache" => {
                    o.no_cache = true;
                    keep(&mut o, "--no-cache");
                }
                "--cold" => {
                    o.cold = true;
                    keep(&mut o, "--cold");
                }
                "--no-progress" => o.no_progress = true,
                "--executor" => match args.next().as_deref() {
                    Some("pool") => o.steal = false,
                    Some("steal") => o.steal = true,
                    other => {
                        eprintln!("--executor needs pool|steal, got {other:?}");
                        std::process::exit(2);
                    }
                },
                "--shards" => {
                    o.shards = match args.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => {
                            eprintln!("--shards needs a shard count >= 1");
                            std::process::exit(2);
                        }
                        n => n,
                    }
                }
                "--shard" => {
                    let spec = args.next().unwrap_or_default();
                    o.shard = match spec.split_once('/').and_then(|(k, n)| {
                        Some((k.parse().ok()?, n.parse().ok()?))
                            .filter(|&(k, n): &(usize, usize)| n >= 1 && k < n)
                    }) {
                        Some(kn) => Some(kn),
                        None => {
                            eprintln!("--shard needs K/N with K < N, got {spec:?}");
                            std::process::exit(2);
                        }
                    }
                }
                "--merge-shards" => {
                    o.merge_shards = match args.next().and_then(|v| v.parse().ok()) {
                        Some(0) | None => {
                            eprintln!("--merge-shards needs a shard count >= 1");
                            std::process::exit(2);
                        }
                        n => n,
                    }
                }
                // Coordinator-side supervision knobs: children inherit
                // neither (the coordinator watches them, not vice versa).
                "--shard-lease-ms" => {
                    o.shard_lease_ms = match args.next().and_then(|v| v.parse().ok()) {
                        Some(ms) => Some(ms),
                        None => {
                            eprintln!("--shard-lease-ms needs milliseconds (0 disables)");
                            std::process::exit(2);
                        }
                    }
                }
                "--shard-restarts" => {
                    o.shard_restarts = match args.next().and_then(|v| v.parse().ok()) {
                        Some(n) => Some(n),
                        None => {
                            eprintln!("--shard-restarts needs a restart budget");
                            std::process::exit(2);
                        }
                    }
                }
                "--trace" => {
                    // Optional operand: `--trace out.jsonl` or bare
                    // `--trace` for the binary's default path.
                    let explicit = args
                        .peek()
                        .is_some_and(|p| !p.starts_with('-'))
                        .then(|| args.next().unwrap());
                    o.trace = Some(explicit.map(PathBuf::from).unwrap_or_default());
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: {name} [--quick] [--csv] [--workers N] [--no-cache] \
                         [--cold] [--no-progress] [--trace [PATH]] \
                         [--executor pool|steal] [--shards N] [--shard K/N] \
                         [--merge-shards N] [--shard-lease-ms N] [--shard-restarts N]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        // Shard children exchange results through the shared cache; a
        // cacheless split could never be merged back together.
        if (o.shards.is_some() || o.shard.is_some() || o.merge_shards.is_some()) && o.no_cache {
            eprintln!("sharded execution requires the result cache (drop --no-cache)");
            std::process::exit(2);
        }
        // Child shard processes write no terminal; their progress
        // streams would interleave illegibly.
        o.child_args.push("--no-progress".to_string());
        if o.trace.is_none() {
            if let Ok(p) = std::env::var("SUSS_TRACE") {
                if !p.is_empty() {
                    o.trace = Some(PathBuf::from(p));
                }
            }
        }
        o
    }

    /// The binary's artifact name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The resolved JSONL trace path, if tracing was requested; a bare
    /// `--trace` defaults to `results/<name>.trace.jsonl`.
    pub fn trace_path(&self) -> Option<PathBuf> {
        let p = self.trace.as_ref()?;
        if p.as_os_str().is_empty() {
            Some(PathBuf::from("results").join(format!("{}.trace.jsonl", self.name)))
        } else {
            Some(p.clone())
        }
    }

    /// Open the JSONL trace sink for this run (creating parent
    /// directories), or `None` when tracing is off. The chosen path is
    /// announced on stderr. Call [`simtrace::EventSink::flush`] — or let
    /// the process exit via the sink's buffered writer being dropped at
    /// end of `main` — after exporting.
    pub fn open_trace(&self) -> Option<simtrace::JsonlSink<std::io::BufWriter<std::fs::File>>> {
        let path = self.trace_path()?;
        if let Some(parent) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                return None;
            }
        }
        match std::fs::File::create(&path) {
            Ok(f) => {
                eprintln!("trace: {}", path.display());
                Some(simtrace::JsonlSink::new(std::io::BufWriter::new(f)))
            }
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// Campaign execution options for this invocation: requested worker
    /// count, the shared cache under `results/cache/`, progress on
    /// stderr (human output goes to stdout, so redirects stay clean),
    /// flight-recorder dumps under `results/flightrec/` for cells that
    /// terminally panic or time out, the executor selected by the
    /// `--executor`/`--shards`/`--shard`/`--merge-shards` flags, and
    /// `SUSS_*` environment overrides applied last (so a coordinator's
    /// `SUSS_SHARD=k/N` wins inside shard children;
    /// `SUSS_FLIGHTREC_DIR=` disables the recorder, `SUSS_PROF=1`
    /// enables per-cell span profiling).
    pub fn runner(&self) -> RunnerOpts {
        let mut r = RunnerOpts::default().with_workers(self.workers);
        if !self.no_cache {
            r.cache_dir = Some(PathBuf::from("results/cache"));
        }
        r.force_cold = self.cold;
        r.progress = !self.no_progress;
        r.flightrec_dir = Some(PathBuf::from("results/flightrec"));
        r.manifest_stem = Some(PathBuf::from("results").join(self.name));
        if let Some((index, total)) = self.shard {
            // A CLI-selected shard run exits after writing its shard
            // manifest — the figure-rendering tail of the binary must
            // not run on a partial result set.
            r.executor = ExecSpec::Shard { index, total };
            r.shard_exit = true;
        } else if let Some(shards) = self.shards {
            r.executor = ExecSpec::Coordinator {
                shards,
                argv: Some(self.child_args.clone()),
            };
        } else if let Some(shards) = self.merge_shards {
            r.executor = ExecSpec::MergeShards { shards };
        } else if self.steal {
            r.executor = ExecSpec::WorkStealing;
        }
        if let Some(ms) = self.shard_lease_ms {
            r.shard_lease = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(n) = self.shard_restarts {
            r.shard_restarts = n;
        }
        r.env_overrides()
    }

    /// Write a campaign manifest to `results/<name>.manifest.json`.
    pub fn write_manifest(&self, m: &RunManifest) {
        let path = PathBuf::from("results").join(format!("{}.manifest.json", self.name));
        match m.write(&path) {
            Ok(()) => eprintln!("manifest: {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }

    /// Export one simulation run's flows and counters into the trace
    /// sink under `run` label, then flush. `flows` pairs each flow id
    /// with its outcome; all outcomes must come from the same simulation
    /// (they share one counter snapshot — the first one's is exported).
    pub fn export_run(
        sink: &mut dyn simtrace::EventSink,
        run: Option<&str>,
        flows: &[(u64, &experiments::FlowOutcome)],
    ) {
        let mut t_end = 0u64;
        for (id, out) in flows {
            out.trace.export(*id, run, sink);
            if let Some(s) = out.trace.samples.last() {
                t_end = t_end.max(s.t.as_nanos());
            }
            if let Some((t, _)) = out.trace.events.last() {
                t_end = t_end.max(t.as_nanos());
            }
        }
        if let Some((_, first)) = flows.first() {
            simtrace::export_counters(&first.counters, t_end, run, sink);
        }
        if let Err(e) = sink.flush() {
            eprintln!("trace flush failed: {e}");
        }
    }

    /// Print a table, and its CSV form if requested.
    pub fn emit(&self, title: &str, table: &simstats::TextTable) {
        println!("== {title} ==");
        print!("{}", table.render());
        if self.csv {
            println!("--- csv ---");
            print!("{}", table.to_csv());
        }
        println!();
    }
}
