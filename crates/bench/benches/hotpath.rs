//! Hot-path micro-benches: per-ACK controller cost (the paper stresses
//! SUSS's marginal CPU overhead) and raw simulator event throughput.

use cc_algos::{make_controller, CcKind};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;
use tcp_sim::cc::AckView;

const MSS: u64 = 1448;

fn drive_acks(kind: CcKind, n: u64) -> u64 {
    let mut cc = make_controller(kind, 10 * MSS, MSS);
    let mut acked = 0u64;
    let mut snd_nxt = 10 * MSS;
    for k in 0..n {
        let now = 100_000_000 + k * 100_000;
        acked += MSS;
        cc.on_ack(&AckView {
            now,
            ack_seq: acked,
            newly_acked: MSS,
            rtt_sample: Some(Duration::from_millis(100)),
            srtt: Some(Duration::from_millis(100)),
            min_rtt: Some(Duration::from_millis(100)),
            inflight: snd_nxt - acked,
            snd_nxt,
            delivered: acked,
            app_limited: false,
        });
        let w = cc.cwnd();
        if acked + w > snd_nxt {
            let grant = acked + w - snd_nxt;
            snd_nxt += grant;
            cc.on_sent(now, grant, snd_nxt);
        }
        if let Some(t) = cc.next_timer() {
            if t <= now {
                cc.on_timer(now);
            }
        }
    }
    cc.cwnd()
}

fn bench_cc_on_ack(c: &mut Criterion) {
    let mut g = c.benchmark_group("cc_per_ack");
    for kind in [
        CcKind::Reno,
        CcKind::Cubic,
        CcKind::CubicSuss,
        CcKind::CubicHspp,
        CcKind::Bbr,
        CcKind::Bbr2,
    ] {
        g.bench_function(&kind.label(), |b| b.iter(|| drive_acks(kind, 2_000)));
    }
    g.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    c.bench_function("netsim_1mb_transfer", |b| {
        b.iter_batched(
            || (),
            |_| {
                let scn = workload::PathScenario::new(
                    workload::ServerSite::NzCampus,
                    workload::LastHop::Wired,
                );
                experiments::run_flow(&scn, CcKind::Cubic, workload::MB, 1, false)
            },
            BatchSize::SmallInput,
        )
    });
}

/// Event-queue microbench: pure scheduler churn (trivial agent callbacks)
/// under each engine, so the per-event push/pop cost dominates. The same
/// seeded workload runs on the binary-heap baseline and the timer wheel;
/// `scripts/bench_snapshot.sh` records the ratio in `BENCH_hotpath.json`.
fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for (label, engine) in [
        ("heap", netsim::EngineConfig::baseline()),
        ("wheel", netsim::EngineConfig::default()),
    ] {
        g.bench_function(format!("timer_churn_4k_{label}"), |b| {
            b.iter(|| suss_bench::timer_churn(engine, 4_096, 50_000))
        });
    }
    g.finish();
}

/// End-to-end events/sec A/B: the same dumbbell download under the
/// baseline (heap, no pooling) and default (wheel + pooling) engines.
/// Results are byte-identical by the scheduler-equivalence contract; only
/// wall time differs.
fn bench_engine_end_to_end(c: &mut Criterion) {
    let scn =
        workload::PathScenario::new(workload::ServerSite::GoogleTokyo, workload::LastHop::Wired);
    let mut g = c.benchmark_group("engine_end_to_end");
    for (label, engine) in [
        ("heap", netsim::EngineConfig::baseline()),
        ("wheel", netsim::EngineConfig::default()),
    ] {
        g.bench_function(format!("tokyo_wired_2mb_{label}"), |b| {
            b.iter(|| {
                experiments::run_flow_engine(
                    &scn,
                    CcKind::CubicSuss,
                    2 * workload::MB,
                    1,
                    false,
                    netsim::SimTime::from_secs(600),
                    engine,
                )
            })
        });
    }
    g.finish();
}

fn bench_suss_decision(c: &mut Criterion) {
    c.bench_function("suss_growth_factor", |b| {
        let cfg = suss_core::SussConfig::default();
        let inputs = suss_core::GrowthInputs {
            ack_train: Duration::from_millis(10),
            min_rtt: Duration::from_millis(100),
            mo_rtt: Duration::from_millis(102),
            rounds_since_min_rtt: 1,
        };
        b.iter(|| suss_core::growth_factor(&cfg, &inputs))
    });
}

criterion_group! {
    name = hotpath;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_cc_on_ack, bench_sim_throughput, bench_event_queue,
              bench_engine_end_to_end, bench_suss_decision
}
criterion_main!(hotpath);
