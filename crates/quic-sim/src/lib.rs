//! # quic-sim — a QUIC-like message-oriented transport on `netsim`
//!
//! The second transport of the SUSS reproduction, beside `tcp-sim`. Its
//! purpose is twofold:
//!
//! 1. **Prove SUSS's information requirements.** The paper claims SUSS
//!    ports to userspace QUIC congestion control. Here every controller
//!    in `cc-algos` — CUBIC, CUBIC+SUSS, BBR, Reno, HyStart++ — attaches
//!    through the quinn-shaped [`cc_algos::QuicController`] interface
//!    only (byte counts and times, no TCP sequence numbers), and drives
//!    a transport with *no cumulative sequence space at all*.
//! 2. **Reproduce the pacing-strategy matrix.** Real QUIC stacks differ
//!    in how they *space* departures (per-packet, burst-N, chunked
//!    interval timers — the "QUIC Steps" comparison), and that choice
//!    interacts with slow-start acceleration. [`PacingStrategy`] reifies
//!    the three shapes; the `ext_quic_pacing` campaign crosses them with
//!    {CUBIC, CUBIC+SUSS} on {4G, wired} paths.
//!
//! Architecture (one module per mechanism, mirroring `tcp-sim`):
//!
//! * [`frames`] — typed payloads with modeled wire sizes: data packets
//!   (packet number + stream chunk) and ACK frames with packet-number
//!   ranges.
//! * [`loss`] — RFC 9002-style loss detection (packet threshold + time
//!   threshold) feeding a NAK-style retransmission list, plus PTO support
//!   in the sender.
//! * [`pacing`] — the pluggable [`PacingStrategy`] layered over the
//!   transport-neutral [`suss_core::Pacer`].
//! * [`sender`] / [`receiver`] — the endpoint agents; [`flow`] wires a
//!   pair into a [`netsim::Sim`].
//!
//! Telemetry reuses the TCP transport's `ConnTrace` schema and registers
//! `quic.*` counters in the shared `simtrace` catalogue, so `suss-trace`
//! tooling, the CC decision trace, and the flight recorder work on both
//! transports without translation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flow;
pub mod frames;
pub mod loss;
pub mod pacing;
pub mod receiver;
pub mod sender;

pub use flow::{
    install_quic_flow, quic_flow_complete, teardown_quic_flow, wire_quic_flow, QuicFlowEnds,
};
pub use frames::{QuicAckPkt, QuicDataPkt, MAX_ACK_RANGES};
pub use loss::{loss_delay, AckOutcome, LossDetector, SentPacket, PACKET_THRESHOLD};
pub use pacing::{PacingStrategy, QuicPacer};
pub use receiver::QuicReceiver;
pub use sender::{QuicConfig, QuicFlowStats, QuicSender};
