//! RTT estimation and retransmission-timeout computation (RFC 6298).

use std::time::Duration;

/// Smoothed RTT estimator with RFC 6298 RTO computation and exponential
/// backoff.
///
/// Linux-style bounds are used by default (`min_rto = 200 ms`, the kernel's
/// `TCP_RTO_MIN`) rather than the RFC's 1 s floor, matching the stacks the
/// paper measures against.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    latest: Option<Duration>,
    min_rtt: Option<Duration>,
    min_rto: Duration,
    max_rto: Duration,
    backoff: u32,
}

impl RttEstimator {
    /// Create an estimator with Linux-like RTO bounds.
    pub fn new() -> Self {
        Self::with_bounds(Duration::from_millis(200), Duration::from_secs(120))
    }

    /// Create an estimator with explicit RTO bounds.
    pub fn with_bounds(min_rto: Duration, max_rto: Duration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            latest: None,
            min_rtt: None,
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Feed a fresh RTT sample (must come from a non-retransmitted
    /// segment, per Karn's algorithm — the transport enforces this).
    pub fn on_sample(&mut self, rtt: Duration) {
        self.latest = Some(rtt);
        self.min_rtt = Some(self.min_rtt.map_or(rtt, |m| m.min(rtt)));
        match self.srtt {
            None => {
                // First measurement: SRTT = R, RTTVAR = R/2.
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                let err = srtt.abs_diff(rtt);
                self.rttvar = self.rttvar.mul_f64(0.75) + err.mul_f64(0.25);
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some(srtt.mul_f64(0.875) + rtt.mul_f64(0.125));
            }
        }
        // A successful sample ends any backoff.
        self.backoff = 0;
    }

    /// Smoothed RTT, if a sample has been taken.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// Most recent raw sample.
    pub fn latest(&self) -> Option<Duration> {
        self.latest
    }

    /// Lifetime minimum RTT.
    pub fn min_rtt(&self) -> Option<Duration> {
        self.min_rtt
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> Duration {
        self.rttvar
    }

    /// The current retransmission timeout, including backoff.
    ///
    /// `RTO = max(min_rto, SRTT + 4·RTTVAR) · 2^backoff`, capped at
    /// `max_rto`. Before the first sample, `RTO = 1 s` (RFC 6298 §2.1).
    pub fn rto(&self) -> Duration {
        let base = match self.srtt {
            None => Duration::from_secs(1),
            Some(srtt) => (srtt + 4 * self.rttvar).max(self.min_rto),
        };
        let backed_off = base.saturating_mul(1u32 << self.backoff.min(16));
        backed_off.min(self.max_rto)
    }

    /// Double the RTO after a retransmission timeout fires.
    pub fn back_off(&mut self) {
        self.backoff = self.backoff.saturating_add(1);
    }

    /// Current backoff exponent.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn initial_rto_is_one_second() {
        assert_eq!(RttEstimator::new().rto(), Duration::from_secs(1));
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new();
        e.on_sample(ms(100));
        assert_eq!(e.srtt(), Some(ms(100)));
        assert_eq!(e.rttvar(), ms(50));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), ms(300));
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.on_sample(ms(80));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis() as i64 - 80).abs() <= 1, "srtt {srtt:?}");
        assert!(e.rttvar() < ms(2));
        // Stable path: RTO collapses to the floor.
        assert_eq!(e.rto(), ms(200));
    }

    #[test]
    fn variance_reacts_to_jitter() {
        let mut e = RttEstimator::new();
        for i in 0..50 {
            e.on_sample(ms(if i % 2 == 0 { 50 } else { 150 }));
        }
        assert!(e.rttvar() > ms(30), "rttvar {:?}", e.rttvar());
        assert!(e.rto() > ms(200));
    }

    #[test]
    fn min_rtt_tracks_floor() {
        let mut e = RttEstimator::new();
        e.on_sample(ms(100));
        e.on_sample(ms(70));
        e.on_sample(ms(130));
        assert_eq!(e.min_rtt(), Some(ms(70)));
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = RttEstimator::new();
        e.on_sample(ms(100)); // RTO 300 ms
        e.back_off();
        assert_eq!(e.rto(), ms(600));
        e.back_off();
        assert_eq!(e.rto(), ms(1200));
        e.on_sample(ms(100));
        assert_eq!(e.backoff(), 0);
        // RTTVAR decayed toward zero on the repeat sample: 0.75*50 = 37.5,
        // so RTO = 100 + 4*37.5 = 250 ms.
        assert_eq!(e.rto(), ms(250));
    }

    #[test]
    fn rto_capped_at_max() {
        let mut e = RttEstimator::with_bounds(ms(200), Duration::from_secs(2));
        e.on_sample(ms(500));
        for _ in 0..10 {
            e.back_off();
        }
        assert_eq!(e.rto(), Duration::from_secs(2));
    }
}
