//! Quickstart: measure what SUSS buys on one Internet path.
//!
//! Downloads the same 2 MB file over the paper's Tokyo-server → NZ-WiFi
//! path with CUBIC (SUSS off), CUBIC+SUSS, and BBR, and prints the flow
//! completion times plus the SUSS decision trail.
//!
//! Run with: `cargo run --release --example quickstart`

use suss_repro::prelude::*;

fn main() {
    let path = PathScenario::new(ServerSite::GoogleTokyo, LastHop::WiFi);
    println!(
        "path: {}  (minRTT {:.0} ms, bottleneck {}, BDP {} kB)\n",
        path.id(),
        path.min_rtt().as_secs_f64() * 1e3,
        path.bottleneck,
        path.bdp_bytes() / 1000
    );

    let size = 2 * MB;
    for kind in [CcKind::Cubic, CcKind::CubicSuss, CcKind::Bbr] {
        let out = run_flow(&path, kind, size, 1, true);
        println!(
            "{:<12} fct = {:.3} s   segments sent = {:>5}   retransmits = {:>3}   suss pacing periods = {}",
            kind.label(),
            out.fct_secs(),
            out.segs_sent,
            out.segs_retransmitted,
            out.suss_pacings,
        );
    }

    let on = run_flow(&path, CcKind::CubicSuss, size, 1, false);
    let off = run_flow(&path, CcKind::Cubic, size, 1, false);
    println!(
        "\nSUSS improvement on this path/size: {:.1}%",
        (1.0 - on.fct_secs() / off.fct_secs()) * 100.0
    );
}
