//! # suss-bench — the benchmark harness
//!
//! One binary per table/figure of the paper (DESIGN.md §3 maps each id to
//! its experiment module), plus Criterion micro/macro benches.
//!
//! Every binary accepts `--quick` to run the scaled-down parameter set
//! (useful for smoke tests; the default is the full paper-scale run) and
//! `--csv` to emit machine-readable output after the human-readable
//! table. Binaries whose experiment runs as a simrunner campaign also
//! accept the parallel-execution flags (`--workers`, `--no-cache`,
//! `--cold`, `--no-progress`), cache results under `results/cache/`, and
//! write a run manifest to `results/<figure>.manifest.json`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use simrunner::{RunManifest, RunnerOpts};
use std::path::PathBuf;

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinOpts {
    /// Run the scaled-down parameter set.
    pub quick: bool,
    /// Also emit CSV.
    pub csv: bool,
    /// Worker threads for campaign execution (0 = all cores).
    pub workers: usize,
    /// Disable the result cache.
    pub no_cache: bool,
    /// Ignore existing cache entries (results are still stored back).
    pub cold: bool,
    /// Suppress the stderr progress stream.
    pub no_progress: bool,
}

impl BinOpts {
    /// Parse from `std::env::args`.
    pub fn from_args() -> Self {
        let mut o = BinOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => o.quick = true,
                "--csv" => o.csv = true,
                "--workers" => {
                    o.workers = match args.next().and_then(|v| v.parse().ok()) {
                        Some(w) => w,
                        None => {
                            eprintln!("--workers needs a number");
                            std::process::exit(2);
                        }
                    }
                }
                "--no-cache" => o.no_cache = true,
                "--cold" => o.cold = true,
                "--no-progress" => o.no_progress = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--quick] [--csv] [--workers N] [--no-cache] \
                         [--cold] [--no-progress]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        o
    }

    /// Campaign execution options for this invocation: requested worker
    /// count, the shared cache under `results/cache/`, progress on
    /// stderr (human output goes to stdout, so redirects stay clean),
    /// with `SUSS_*` environment overrides applied last.
    pub fn runner(&self) -> RunnerOpts {
        let mut r = RunnerOpts::default().with_workers(self.workers);
        if !self.no_cache {
            r.cache_dir = Some(PathBuf::from("results/cache"));
        }
        r.force_cold = self.cold;
        r.progress = !self.no_progress;
        r.env_overrides()
    }

    /// Write a campaign manifest to `results/<name>.manifest.json`.
    pub fn write_manifest(&self, name: &str, m: &RunManifest) {
        let path = PathBuf::from("results").join(format!("{name}.manifest.json"));
        match m.write(&path) {
            Ok(()) => eprintln!("manifest: {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }

    /// Print a table, and its CSV form if requested.
    pub fn emit(&self, title: &str, table: &simstats::TextTable) {
        println!("== {title} ==");
        print!("{}", table.render());
        if self.csv {
            println!("--- csv ---");
            print!("{}", table.to_csv());
        }
        println!();
    }
}
