//! QUIC-like packets carried as simulator payloads.
//!
//! As in `tcp_sim::segment` there is no wire encoding — the simulator
//! delivers typed payloads — but on-wire *sizes* model a realistic QUIC
//! short-header packet over UDP/IPv4, because header bytes occupy
//! bottleneck queues and serialization time.
//!
//! The structural difference from TCP is the *packet-number space*: a
//! packet number is a transmission identity, never reused, and carries a
//! stream chunk as its cargo. Retransmitting stream bytes mints a fresh
//! packet number, so acknowledgments are unambiguous and every ACK yields
//! a valid RTT sample (QUIC needs no Karn filter).

use netsim::FlowId;
use tcp_sim::ranges::ByteRange;

/// Nanoseconds on the transport clock.
pub type Nanos = u64;

/// IPv4 (20 B) + UDP (8 B) headers.
pub const UDP_IP_HEADER_BYTES: u32 = 28;
/// QUIC short header: flags (1) + DCID (8) + packet number (4).
pub const SHORT_HEADER_BYTES: u32 = 13;
/// STREAM frame overhead: type + offset/length varints (amortized).
pub const STREAM_FRAME_BYTES: u32 = 9;
/// ACK frame fixed part: type + largest + delay + range-count varints.
pub const ACK_FRAME_BASE_BYTES: u32 = 9;
/// Per additional ACK range (gap + length varints).
pub const ACK_RANGE_BYTES: u32 = 4;
/// ACK frames report at most this many packet-number ranges (the newest),
/// like the 3-block SACK option budget on the TCP side.
pub const MAX_ACK_RANGES: usize = 3;

/// A half-open range of packet numbers `[start, end)`.
pub type PktRange = (u64, u64);

/// A 1-RTT data packet carrying one STREAM frame.
///
/// `Default` exists so consumed payload boxes can be blanked and recycled
/// through the engine's [`netsim::PayloadPool`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuicDataPkt {
    /// Flow (connection) this packet belongs to.
    pub flow: FlowId,
    /// Packet number: unique per transmission, monotonically increasing.
    pub pkt_num: u64,
    /// Absolute stream offset of the first cargo byte.
    pub offset: u64,
    /// Stream bytes carried.
    pub len: u32,
    /// This chunk ends the stream (carries the final byte).
    pub fin: bool,
    /// Send timestamp, echoed by the receiver for RTT sampling.
    pub sent_at: Nanos,
    /// Carries previously-transmitted stream bytes (diagnostic only —
    /// the fresh packet number keeps its RTT sample valid regardless).
    pub is_rtx: bool,
}

impl QuicDataPkt {
    /// On-wire size: cargo plus UDP/IP, short header, and frame overhead.
    pub fn wire_bytes(&self) -> u32 {
        self.len + UDP_IP_HEADER_BYTES + SHORT_HEADER_BYTES + STREAM_FRAME_BYTES
    }

    /// The stream byte range this packet covers.
    pub fn range(&self) -> ByteRange {
        ByteRange::new(self.offset, self.offset + u64::from(self.len))
    }
}

/// An ACK-only packet: one ACK frame with up to [`MAX_ACK_RANGES`]
/// packet-number ranges (newest last, ascending, half-open).
///
/// There is no cumulative sequence — the ranges are the entire
/// acknowledgment state the sender gets, which is what forces the
/// byte-counter reconstruction in `cc_algos::qcc`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuicAckPkt {
    /// Flow (connection) this ACK belongs to.
    pub flow: FlowId,
    /// Largest packet number received so far.
    pub largest: u64,
    /// Acknowledged packet-number ranges, ascending, at most
    /// [`MAX_ACK_RANGES`] (the newest ones; older ranges age out exactly
    /// like TCP's 3-block SACK budget).
    pub ranges: Vec<PktRange>,
    /// Packet number of the arrival that triggered this ACK.
    pub echo_pkt: u64,
    /// Echo of that packet's `sent_at`, for RTT sampling.
    pub echo_ts: Nanos,
}

impl QuicAckPkt {
    /// On-wire size: UDP/IP + short header + ACK frame.
    pub fn wire_bytes(&self) -> u32 {
        UDP_IP_HEADER_BYTES
            + SHORT_HEADER_BYTES
            + ACK_FRAME_BASE_BYTES
            + ACK_RANGE_BYTES * self.ranges.len().saturating_sub(1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_wire_size_includes_headers() {
        let p = QuicDataPkt {
            flow: FlowId(1),
            pkt_num: 7,
            offset: 0,
            len: 1448,
            fin: false,
            sent_at: 0,
            is_rtx: false,
        };
        assert_eq!(p.wire_bytes(), 1448 + 50);
        assert_eq!(p.range(), ByteRange::new(0, 1448));
    }

    #[test]
    fn ack_wire_size_grows_with_ranges() {
        let mut a = QuicAckPkt {
            flow: FlowId(1),
            largest: 9,
            ranges: vec![(0, 10)],
            echo_pkt: 9,
            echo_ts: 0,
        };
        let one = a.wire_bytes();
        a.ranges.push((12, 14));
        a.ranges.push((20, 21));
        assert_eq!(a.wire_bytes(), one + 2 * ACK_RANGE_BYTES);
    }
}
