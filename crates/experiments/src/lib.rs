//! # experiments — per-figure/table runners for the SUSS reproduction
//!
//! Each module regenerates one table or figure from the paper's evaluation
//! (see DESIGN.md §3 for the full index). Every experiment has a
//! parameters struct with two constructors:
//!
//! * `paper()` — full scale (50 iterations, full sweeps), used by the
//!   `suss-bench` binaries;
//! * `quick()` — a scaled-down variant for Criterion benches and CI.
//!
//! All experiments are deterministic given their seed base.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dumbbell;
pub mod runner;
pub mod scope;

pub mod ablations;
pub mod campaigns;
pub mod chaos;
pub mod extensions;
pub mod fairness;
pub mod fct_sweep;
pub mod fig01;
pub mod fig02;
pub mod fig09;
pub mod fig13;
pub mod fleet;
pub mod loss;
pub mod quic_pacing;
pub mod stability;

pub use campaigns::{Batch, FlowGrid, FlowGridRun, FlowStats, CAMPAIGN_VERSION};
pub use chaos::{chaos_table, run_flow_faulted, run_flow_faulted_engine, FaultFamily};
pub use dumbbell::{
    run_dumbbell, run_dumbbell_engine, run_dumbbell_scoped, DumbbellFlow, DumbbellOutcome,
};
pub use fleet::{fleet_table, run_fleet_cell, FleetConfig, FleetRun, FleetStats};
pub use quic_pacing::{
    quic_pacing_campaign, quic_pacing_table, run_quic_pacing_cell, QuicPacingConfig, QuicPacingRun,
    QuicPacingStats,
};
pub use runner::{mean_fct, run_flow, run_flow_engine, FlowOutcome, IW, MSS};
pub use scope::{attach_link_scope, emit_scope_annotations, ScopeHistograms, SCOPE_SERIES};
