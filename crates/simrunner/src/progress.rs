//! Campaign progress reporting on stderr, plus the shard heartbeat file.
//!
//! One carriage-returned status line while the run is in flight, then a
//! final summary line. Kept on stderr so stdout stays a clean artifact
//! stream for the figure binaries.
//!
//! [`Heartbeat`] is the liveness half: a shard worker rewrites its
//! heartbeat file whenever its progress epoch advances, and the
//! coordinator's lease monitor reads it back with [`read_heartbeat`] to
//! tell a slow shard (epoch still moving) from a dead or livelocked one
//! (epoch frozen).

use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// Streams `done/total`, throughput, and ETA to stderr.
pub struct Progress {
    experiment: String,
    total: usize,
    done: usize,
    cached: usize,
    started: Instant,
    enabled: bool,
}

impl Progress {
    /// Create a reporter for `total` cells; silent unless `enabled`.
    pub fn new(experiment: &str, total: usize, enabled: bool) -> Self {
        Progress {
            experiment: experiment.to_string(),
            total,
            done: 0,
            cached: 0,
            started: Instant::now(),
            enabled,
        }
    }

    /// Cells finished so far (the heartbeat epoch's completed-cell term).
    pub fn done(&self) -> usize {
        self.done
    }

    /// Record one finished cell (`from_cache` marks a hit).
    pub fn tick(&mut self, from_cache: bool) {
        self.done += 1;
        if from_cache {
            self.cached += 1;
        }
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let rate = self.done as f64 / elapsed;
        let remaining = self.total.saturating_sub(self.done);
        let eta = remaining as f64 / rate.max(1e-9);
        eprint!(
            "\r{}: {}/{} cells ({} cached) | {:.1} cells/s | ETA {:.0}s   ",
            self.experiment, self.done, self.total, self.cached, rate, eta
        );
        let _ = std::io::stderr().flush();
    }

    /// Finish the line with a run summary.
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        eprintln!(
            "\r{}: {} cells in {:.1}s ({} cached, {:.1} cells/s)        ",
            self.experiment,
            self.done,
            elapsed,
            self.cached,
            self.done as f64 / elapsed.max(1e-9)
        );
    }
}

/// One shard's liveness record as serialized to its heartbeat file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatRecord {
    /// Process id of the shard worker that wrote the record.
    pub pid: u64,
    /// Monotone progress epoch: completed cells plus in-flight simulator
    /// progress ticks. Advances whenever the shard does real work, even
    /// mid-cell, so a slow shard is distinguishable from a stuck one.
    pub epoch: u64,
    /// Wall-clock time of the write, milliseconds since the UNIX epoch
    /// (informational; the lease keys on epoch changes, not wall time).
    pub at_ms: u64,
}

/// Read a heartbeat file back. `None` when missing or unparseable — a
/// heartbeat is advisory, so a torn or absent file reads as "no signal",
/// never as an error.
pub fn read_heartbeat(path: &Path) -> Option<HeartbeatRecord> {
    let text = std::fs::read_to_string(path).ok()?;
    HeartbeatRecord::from_json(&serde::Json::parse(text.trim())?)
}

/// Writes a shard's heartbeat file (`<stem>.shard<k>of<N>.heartbeat.json`).
///
/// Writes are epoch-gated and throttled: the file is rewritten only when
/// the epoch *changed* since the last write, at most every
/// [`MIN_INTERVAL`](Self::MIN_INTERVAL). A shard that stops advancing
/// therefore stops writing — a deliberately stale file is exactly the
/// signal the coordinator's lease expires on. Writes go through a temp
/// file + rename so the monitor never reads a torn record.
pub struct Heartbeat {
    path: PathBuf,
    pid: u64,
    last_epoch: u64,
    last_write: Instant,
    written: bool,
    warned: bool,
}

impl Heartbeat {
    /// Minimum interval between heartbeat writes.
    pub const MIN_INTERVAL: Duration = Duration::from_millis(100);

    /// Create the writer and immediately publish an epoch-0 record, so
    /// the monitor sees the shard alive before its first cell completes.
    pub fn new(path: PathBuf) -> Self {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let mut hb = Heartbeat {
            path,
            pid: u64::from(std::process::id()),
            last_epoch: 0,
            last_write: Instant::now(),
            written: false,
            warned: false,
        };
        hb.write(0);
        hb
    }

    /// Record progress `epoch` (writes only on change, throttled).
    pub fn beat(&mut self, epoch: u64) {
        if self.written && epoch == self.last_epoch {
            return;
        }
        if self.written && self.last_write.elapsed() < Self::MIN_INTERVAL {
            return;
        }
        self.write(epoch);
    }

    /// The heartbeat file path (the coordinator removes it on success).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write(&mut self, epoch: u64) {
        let at_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let rec = HeartbeatRecord {
            pid: self.pid,
            epoch,
            at_ms,
        };
        let tmp = self.path.with_extension("json.tmp");
        let outcome = std::fs::write(&tmp, serde::to_string(&rec))
            .and_then(|()| std::fs::rename(&tmp, &self.path));
        match outcome {
            Ok(()) => {
                self.written = true;
                self.last_epoch = epoch;
                self.last_write = Instant::now();
            }
            Err(e) => {
                if !self.warned {
                    eprintln!(
                        "warning: cannot write heartbeat {}: {e} (the shard \
                         keeps running; the lease may expire it)",
                        self.path.display()
                    );
                    self.warned = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_without_printing_when_disabled() {
        let mut p = Progress::new("exp", 3, false);
        p.tick(true);
        p.tick(false);
        p.finish();
        assert_eq!(p.done, 2);
        assert_eq!(p.cached, 1);
        assert_eq!(p.done(), 2);
    }

    #[test]
    fn heartbeat_roundtrips_and_gates_on_epoch_change() {
        let dir = std::env::temp_dir().join(format!("simrunner-hb-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("run.shard0of2.heartbeat.json");
        let mut hb = Heartbeat::new(path.clone());
        let first = read_heartbeat(&path).expect("initial record published at creation");
        assert_eq!(first.epoch, 0);
        assert_eq!(first.pid, u64::from(std::process::id()));

        // Same epoch: no rewrite, even past the throttle window.
        std::thread::sleep(Heartbeat::MIN_INTERVAL + Duration::from_millis(20));
        hb.beat(0);
        assert_eq!(
            read_heartbeat(&path),
            Some(first),
            "frozen epoch must not refresh the file"
        );

        // Advanced epoch: rewritten (throttle already elapsed).
        hb.beat(7);
        assert_eq!(read_heartbeat(&path).unwrap().epoch, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_reader_tolerates_garbage() {
        let dir = std::env::temp_dir().join(format!("simrunner-hb-garbage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.json");
        assert_eq!(read_heartbeat(&path), None, "missing file is no signal");
        std::fs::write(&path, "{\"pid\": 12, truncated").unwrap();
        assert_eq!(read_heartbeat(&path), None, "torn file is no signal");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
