//! Bottleneck queue disciplines.
//!
//! The paper's testbeds use drop-tail buffers on the bottleneck router,
//! sized in bandwidth-delay-product (BDP) multiples via `netem`/`tbf`.
//! [`DropTailQueue`] reproduces that. A small [`Queue`] trait keeps the
//! door open for AQM variants (the related-work section discusses CoDel).

use crate::packet::Packet;
use std::collections::VecDeque;

/// Statistics accumulated by a queue over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued_pkts: u64,
    /// Bytes accepted into the queue.
    pub enqueued_bytes: u64,
    /// Packets dropped because the queue was full.
    pub dropped_pkts: u64,
    /// Bytes dropped because the queue was full.
    pub dropped_bytes: u64,
    /// High-water mark of queue occupancy in bytes.
    pub max_backlog_bytes: u64,
}

/// A FIFO packet queue with an admission policy.
pub trait Queue {
    /// Offer a packet. Returns the packet back if it was dropped.
    fn enqueue(&mut self, pkt: Packet) -> Result<(), Packet>;

    /// Remove the packet at the head of the queue.
    fn dequeue(&mut self) -> Option<Packet>;

    /// Current backlog in bytes.
    fn backlog_bytes(&self) -> u64;

    /// Current backlog in packets.
    fn backlog_pkts(&self) -> usize;

    /// Lifetime statistics.
    fn stats(&self) -> QueueStats;

    /// Capacity in bytes (`u64::MAX` if unbounded).
    fn capacity_bytes(&self) -> u64;
}

/// Classic drop-tail (tail-drop) FIFO queue with a byte-based capacity.
///
/// A packet is admitted iff it fits entirely within the remaining capacity;
/// otherwise it is dropped (and counted). This matches the byte-limited
/// `limit` behaviour of Linux `netem`/`pfifo` used in the paper's testbed.
#[derive(Debug)]
pub struct DropTailQueue {
    fifo: VecDeque<Packet>,
    backlog: u64,
    capacity: u64,
    stats: QueueStats,
}

impl DropTailQueue {
    /// Create a queue holding at most `capacity_bytes` of packets.
    pub fn new(capacity_bytes: u64) -> Self {
        DropTailQueue {
            fifo: VecDeque::new(),
            backlog: 0,
            capacity: capacity_bytes,
            stats: QueueStats::default(),
        }
    }

    /// Create an effectively unbounded queue (for non-bottleneck hops).
    pub fn unbounded() -> Self {
        Self::new(u64::MAX)
    }
}

impl Queue for DropTailQueue {
    fn enqueue(&mut self, pkt: Packet) -> Result<(), Packet> {
        let size = u64::from(pkt.size);
        if self.backlog.saturating_add(size) > self.capacity {
            self.stats.dropped_pkts += 1;
            self.stats.dropped_bytes += size;
            return Err(pkt);
        }
        self.backlog += size;
        self.stats.enqueued_pkts += 1;
        self.stats.enqueued_bytes += size;
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.backlog);
        self.fifo.push_back(pkt);
        Ok(())
    }

    fn dequeue(&mut self) -> Option<Packet> {
        let pkt = self.fifo.pop_front()?;
        self.backlog -= u64::from(pkt.size);
        Some(pkt)
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog
    }

    fn backlog_pkts(&self) -> usize {
        self.fifo.len()
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, Packet};

    fn pkt(size: u32) -> Packet {
        Packet::opaque(FlowId(0), NodeId(0), NodeId(1), size)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DropTailQueue::new(10_000);
        for i in 0..5u32 {
            let mut p = pkt(100);
            p.id = u64::from(i);
            q.enqueue(p).unwrap();
        }
        for i in 0..5u64 {
            assert_eq!(q.dequeue().unwrap().id, i);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn backlog_tracks_bytes_and_packets() {
        let mut q = DropTailQueue::new(1_000);
        q.enqueue(pkt(300)).unwrap();
        q.enqueue(pkt(200)).unwrap();
        assert_eq!(q.backlog_bytes(), 500);
        assert_eq!(q.backlog_pkts(), 2);
        q.dequeue();
        assert_eq!(q.backlog_bytes(), 200);
        assert_eq!(q.backlog_pkts(), 1);
    }

    #[test]
    fn drops_when_full() {
        let mut q = DropTailQueue::new(250);
        q.enqueue(pkt(200)).unwrap();
        let rejected = q.enqueue(pkt(100)).unwrap_err();
        assert_eq!(rejected.size, 100);
        assert_eq!(q.stats().dropped_pkts, 1);
        assert_eq!(q.stats().dropped_bytes, 100);
        // A smaller packet that fits is still admitted after a drop.
        q.enqueue(pkt(50)).unwrap();
        assert_eq!(q.backlog_bytes(), 250);
    }

    #[test]
    fn exact_fit_is_admitted() {
        let mut q = DropTailQueue::new(100);
        q.enqueue(pkt(100)).unwrap();
        assert_eq!(q.stats().dropped_pkts, 0);
    }

    #[test]
    fn max_backlog_high_water_mark() {
        let mut q = DropTailQueue::new(1_000);
        q.enqueue(pkt(400)).unwrap();
        q.enqueue(pkt(400)).unwrap();
        q.dequeue();
        q.enqueue(pkt(100)).unwrap();
        assert_eq!(q.stats().max_backlog_bytes, 800);
    }

    #[test]
    fn unbounded_never_drops() {
        let mut q = DropTailQueue::unbounded();
        for _ in 0..1_000 {
            q.enqueue(pkt(u32::MAX)).unwrap();
        }
        assert_eq!(q.stats().dropped_pkts, 0);
    }
}

/// CoDel (Controlled Delay) AQM queue (RFC 8289).
///
/// The paper's related-work section discusses AQM-assisted slow start
/// (FQ-CoDel, RFC 8290); this queue lets the harness study how SUSS
/// behaves when the bottleneck manages delay instead of dropping at a
/// fixed tail. Packets are timestamped on enqueue; when the *sojourn
/// time* stays above `target` for longer than `interval`, CoDel enters a
/// dropping state and drops from the head at a rate increasing with the
/// square root of the drop count.
#[derive(Debug)]
pub struct CodelQueue {
    fifo: VecDeque<(Packet, u64)>, // (packet, enqueue time ns)
    backlog: u64,
    capacity: u64,
    stats: QueueStats,
    /// Target sojourn time (ns). RFC default 5 ms.
    target_ns: u64,
    /// Sliding-minimum interval (ns). RFC default 100 ms.
    interval_ns: u64,
    /// Time the sojourn time first exceeded target, if tracking.
    first_above_at: Option<u64>,
    /// In the dropping state.
    dropping: bool,
    /// Next scheduled drop time.
    drop_next: u64,
    /// Drops in the current dropping episode.
    drop_count: u32,
    /// AQM (non-overflow) drops.
    pub aqm_drops: u64,
}

impl CodelQueue {
    /// RFC 8289 defaults: 5 ms target, 100 ms interval.
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_params(capacity_bytes, 5_000_000, 100_000_000)
    }

    /// Explicit target/interval (nanoseconds).
    pub fn with_params(capacity_bytes: u64, target_ns: u64, interval_ns: u64) -> Self {
        CodelQueue {
            fifo: VecDeque::new(),
            backlog: 0,
            capacity: capacity_bytes,
            stats: QueueStats::default(),
            target_ns,
            interval_ns,
            first_above_at: None,
            dropping: false,
            drop_next: 0,
            drop_count: 0,
            aqm_drops: 0,
        }
    }

    fn control_law(&self, t: u64) -> u64 {
        t + (self.interval_ns as f64 / (self.drop_count.max(1) as f64).sqrt()) as u64
    }

    /// Offer a packet at time `now`.
    pub fn enqueue_at(&mut self, pkt: Packet, now: u64) -> Result<(), Packet> {
        let size = u64::from(pkt.size);
        if self.backlog.saturating_add(size) > self.capacity {
            self.stats.dropped_pkts += 1;
            self.stats.dropped_bytes += size;
            return Err(pkt);
        }
        self.backlog += size;
        self.stats.enqueued_pkts += 1;
        self.stats.enqueued_bytes += size;
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.backlog);
        self.fifo.push_back((pkt, now));
        Ok(())
    }

    /// Take the next packet to transmit at time `now`, applying the CoDel
    /// head-drop discipline.
    pub fn dequeue_at(&mut self, now: u64) -> Option<Packet> {
        loop {
            let (pkt, enq) = self.fifo.pop_front()?;
            self.backlog -= u64::from(pkt.size);
            let sojourn = now.saturating_sub(enq);

            let above = sojourn > self.target_ns && self.backlog > 2 * 1500;
            if !above {
                // Sojourn acceptable: leave any dropping state.
                self.first_above_at = None;
                self.dropping = false;
                return Some(pkt);
            }

            if !self.dropping {
                match self.first_above_at {
                    None => {
                        self.first_above_at = Some(now);
                        return Some(pkt);
                    }
                    Some(t0) if now.saturating_sub(t0) < self.interval_ns => {
                        return Some(pkt);
                    }
                    Some(_) => {
                        // Sustained high delay: enter dropping state, drop
                        // this packet, continue with the next.
                        self.dropping = true;
                        self.drop_count = 1;
                        self.drop_next = self.control_law(now);
                        self.aqm_drops += 1;
                        self.stats.dropped_pkts += 1;
                        self.stats.dropped_bytes += u64::from(pkt.size);
                        continue;
                    }
                }
            }
            // In dropping state: drop when the schedule says so.
            if now >= self.drop_next {
                self.drop_count += 1;
                self.drop_next = self.control_law(self.drop_next);
                self.aqm_drops += 1;
                self.stats.dropped_pkts += 1;
                self.stats.dropped_bytes += u64::from(pkt.size);
                continue;
            }
            return Some(pkt);
        }
    }

    /// Current backlog in bytes.
    pub fn backlog_bytes(&self) -> u64 {
        self.backlog
    }

    /// Lifetime statistics (overflow + AQM drops combined in `dropped_*`).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod codel_tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, Packet};

    fn pkt(size: u32) -> Packet {
        Packet::opaque(FlowId(0), NodeId(0), NodeId(1), size)
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn low_delay_passes_untouched() {
        let mut q = CodelQueue::new(1_000_000);
        for _ in 0..10 {
            q.enqueue_at(pkt(1500), 0).unwrap();
        }
        // Dequeue within the 5 ms target: no drops.
        for k in 0..10 {
            assert!(q.dequeue_at(k * MS / 4).is_some());
        }
        assert_eq!(q.aqm_drops, 0);
    }

    #[test]
    fn sustained_delay_triggers_dropping() {
        let mut q = CodelQueue::new(10_000_000);
        // Big standing queue enqueued at t=0.
        for _ in 0..500 {
            q.enqueue_at(pkt(1500), 0).unwrap();
        }
        // Drain slowly: sojourn greatly exceeds 5 ms for over 100 ms.
        let mut got = 0;
        for k in 0..400u64 {
            let now = 20 * MS + k * 5 * MS;
            if q.dequeue_at(now).is_some() {
                got += 1;
            }
            if q.backlog_bytes() == 0 {
                break;
            }
        }
        assert!(q.aqm_drops > 0, "CoDel must start dropping");
        assert!(got > 0, "but must still deliver packets");
    }

    #[test]
    fn drop_rate_accelerates() {
        let mut q = CodelQueue::new(100_000_000);
        for _ in 0..5_000 {
            q.enqueue_at(pkt(1500), 0).unwrap();
        }
        // Drain over a long window with persistently terrible sojourn.
        let mut drops_first_half = 0;
        let mut drops_second_half = 0;
        for k in 0..2_000u64 {
            let now = 200 * MS + k * MS;
            let before = q.aqm_drops;
            let _ = q.dequeue_at(now);
            let d = q.aqm_drops - before;
            if k < 1_000 {
                drops_first_half += d;
            } else {
                drops_second_half += d;
            }
            if q.backlog_bytes() == 0 {
                break;
            }
        }
        assert!(
            drops_second_half >= drops_first_half,
            "control law must not decelerate ({drops_first_half} then {drops_second_half})"
        );
    }

    #[test]
    fn overflow_still_tail_drops() {
        let mut q = CodelQueue::new(3_000);
        q.enqueue_at(pkt(1500), 0).unwrap();
        q.enqueue_at(pkt(1500), 0).unwrap();
        assert!(q.enqueue_at(pkt(1500), 0).is_err());
        assert_eq!(q.stats().dropped_pkts, 1);
        assert_eq!(q.aqm_drops, 0);
    }

    #[test]
    fn empties_cleanly() {
        let mut q = CodelQueue::new(10_000);
        assert!(q.dequeue_at(0).is_none());
        q.enqueue_at(pkt(100), 0).unwrap();
        assert!(q.dequeue_at(1).is_some());
        assert!(q.dequeue_at(2).is_none());
        assert_eq!(q.backlog_bytes(), 0);
    }
}
