//! Growth-factor prediction (paper §3 and Appendix A).
//!
//! SUSS decides, at the end of each round's "blue" ACK train, whether the
//! exponential growth of cwnd is extrapolated to continue, and by how many
//! rounds. The decision combines two conditions derived from HyStart's exit
//! criteria:
//!
//! * **Condition 1** (ACK-train length, Eq. 6/17): the ACK train of round
//!   `i+k` is predicted to be `2^k` times the current one (Eq. 5/16), so
//!   growth persists through round `i+k` iff
//!   `Δt_i ≤ minRTT / 2^(k+1)`.
//! * **Condition 2** (queueing-delay forecast, Eq. 8/19): queuing delay has
//!   grown `(moRTT − minRTT) / r` per round since `minRTT` was last updated
//!   `r` rounds ago, so growth persists through round `i+k` iff
//!   `moRTT + k·(moRTT − minRTT)/r ≤ 1.125 · minRTT`.
//!
//! The growth factor is `G = 2^(k+1)` for the largest `k ∈ [0, k_max]`
//! satisfying both, floored at `G = 2` (traditional slow-start).
//!
//! **Fidelity note.** Appendix A's Algorithm 1 as printed starts its loop
//! by testing `Δt ≤ minRTT/2` (its `k = 0` iteration) and returns
//! `2^(k+1)` after the final increment, which disagrees with the main
//! text's Eq. 6 (`G = 4` requires `Δt ≤ minRTT/4`) by one position. We
//! implement the main-text-normative form: with the default `k_max = 1`,
//! `G = 4` iff Eq. 6 and Eq. 8 hold, else `G = 2` — exactly §3.

use crate::config::SussConfig;
use std::time::Duration;

/// Inputs to a growth-factor decision, all measured in the current round.
#[derive(Debug, Clone, Copy)]
pub struct GrowthInputs {
    /// Estimated full ACK-train length of the current round, Δt_i^at
    /// (already scaled from the blue measurement via Eq. 9).
    pub ack_train: Duration,
    /// Connection-lifetime minimum RTT.
    pub min_rtt: Duration,
    /// Minimum RTT observed in the current round (blue samples only).
    pub mo_rtt: Duration,
    /// Rounds since `min_rtt` was last updated. `0` means it was updated
    /// this round — the queueing-delay forecast is then vacuous and
    /// Condition 2 passes (Algorithm 1, line 3).
    pub rounds_since_min_rtt: u64,
}

/// Does Condition 1 (Eq. 17) hold for lookahead `k`?
///
/// `Δt_i ≤ minRTT / 2^(k+1)`, generalized for a configurable base divisor
/// (`ack_train_divisor`, 2 in the paper): `Δt_i ≤ minRTT / (divisor·2^k)`.
pub fn condition1(ack_train: Duration, min_rtt: Duration, k: u32, divisor: u32) -> bool {
    let denom = u64::from(divisor) << k;
    // Compare ack_train * denom <= min_rtt without losing precision.
    ack_train.as_nanos().saturating_mul(u128::from(denom)) <= min_rtt.as_nanos()
}

/// Does Condition 2 (Eq. 19) hold for lookahead `k`?
///
/// `moRTT + k·(moRTT − minRTT)/r ≤ delay_factor · minRTT`. Vacuously true
/// when `r == 0` (minRTT was updated this round).
pub fn condition2(
    mo_rtt: Duration,
    min_rtt: Duration,
    rounds_since_min_rtt: u64,
    k: u32,
    delay_factor: f64,
) -> bool {
    if rounds_since_min_rtt == 0 {
        return true;
    }
    let mo = mo_rtt.as_secs_f64();
    let min = min_rtt.as_secs_f64();
    // moRTT is a per-round min and minRTT the lifetime min, so mo >= min;
    // guard anyway for robustness against caller slack.
    let slope = (mo - min).max(0.0) / rounds_since_min_rtt as f64;
    mo + f64::from(k) * slope <= delay_factor * min
}

/// Compute the growth factor `G_i` for the current round.
///
/// Returns a power of two in `[2, 2^(k_max+1)]`. `G = 2` means "behave as
/// traditional slow-start" (SUSS dormant this round).
pub fn growth_factor(cfg: &SussConfig, inputs: &GrowthInputs) -> u32 {
    if !cfg.enabled {
        return 2;
    }
    debug_assert!(cfg.validate().is_ok());
    let mut best_k = 0u32;
    for k in 1..=cfg.k_max {
        let c1 = condition1(inputs.ack_train, inputs.min_rtt, k, cfg.ack_train_divisor);
        let c2 = condition2(
            inputs.mo_rtt,
            inputs.min_rtt,
            inputs.rounds_since_min_rtt,
            k,
            cfg.delay_factor,
        );
        if c1 && c2 {
            best_k = k;
        } else {
            // Both conditions are monotone in k: once one fails, all
            // larger lookaheads fail too.
            break;
        }
    }
    1u32 << (best_k + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn condition1_boundary() {
        // k=1, divisor=2: ack_train must be <= minRTT/4.
        assert!(condition1(ms(25), ms(100), 1, 2));
        assert!(!condition1(ms(26), ms(100), 1, 2));
        // k=0: <= minRTT/2.
        assert!(condition1(ms(50), ms(100), 0, 2));
        assert!(!condition1(ms(51), ms(100), 0, 2));
    }

    #[test]
    fn condition2_r_zero_vacuous() {
        assert!(condition2(ms(500), ms(100), 0, 3, 1.125));
    }

    #[test]
    fn condition2_forecast() {
        // minRTT 100ms, moRTT 105ms, r=1: forecast for k=1 is 110ms,
        // threshold 112.5ms -> pass.
        assert!(condition2(ms(105), ms(100), 1, 1, 1.125));
        // moRTT 110ms: forecast 120ms > 112.5 -> fail.
        assert!(!condition2(ms(110), ms(100), 1, 1, 1.125));
        // Same moRTT but the rise took 4 rounds: forecast 112.5 -> pass.
        assert!(condition2(ms(110), ms(100), 4, 1, 1.125));
    }

    #[test]
    fn condition2_k_zero_is_current_round_check() {
        // k=0: just moRTT <= 1.125 minRTT.
        assert!(condition2(ms(112), ms(100), 3, 0, 1.125));
        assert!(!condition2(ms(113), ms(100), 3, 0, 1.125));
    }

    fn inputs(ack_train_ms: u64, mo_rtt_ms: u64) -> GrowthInputs {
        GrowthInputs {
            ack_train: ms(ack_train_ms),
            min_rtt: ms(100),
            mo_rtt: ms(mo_rtt_ms),
            rounds_since_min_rtt: 1,
        }
    }

    #[test]
    fn g4_when_both_conditions_hold() {
        // Eq. 6: ack_train <= minRTT/4 = 25ms; Eq. 8 with moRTT=101ms:
        // 101 + 1 = 102 <= 112.5.
        let g = growth_factor(&SussConfig::default(), &inputs(20, 101));
        assert_eq!(g, 4);
    }

    #[test]
    fn g2_when_ack_train_too_long() {
        // 30ms > minRTT/4: next round's train would exceed minRTT/2.
        let g = growth_factor(&SussConfig::default(), &inputs(30, 101));
        assert_eq!(g, 2);
    }

    #[test]
    fn g2_when_queueing_delay_rising() {
        // moRTT 110ms, r=1: forecast 120 > 112.5.
        let g = growth_factor(&SussConfig::default(), &inputs(10, 110));
        assert_eq!(g, 2);
    }

    #[test]
    fn disabled_always_g2() {
        let g = growth_factor(&SussConfig::disabled(), &inputs(1, 100));
        assert_eq!(g, 2);
    }

    #[test]
    fn generalized_kmax_unlocks_higher_g() {
        let cfg = SussConfig::default().with_k_max(3);
        // ack_train 5ms: minRTT/2^(k+1) -> k=3 needs <= 6.25ms: pass all.
        // moRTT barely above minRTT so condition 2 passes for all k.
        let g = growth_factor(&cfg, &inputs(5, 100));
        assert_eq!(g, 16);
        // ack_train 10ms: k=3 needs <=6.25 (fail), k=2 needs <=12.5 (pass).
        let g = growth_factor(&cfg, &inputs(10, 100));
        assert_eq!(g, 8);
    }

    #[test]
    fn kmax_caps_growth() {
        let cfg = SussConfig::default().with_k_max(1);
        let g = growth_factor(&cfg, &inputs(1, 100));
        assert_eq!(g, 4, "k_max=1 must cap G at 4 even on a perfect path");
    }

    #[test]
    fn condition2_gates_lookahead_depth() {
        let cfg = SussConfig::default().with_k_max(3);
        // minRTT=100, moRTT=106, r=1: slope 6ms/round.
        // k=1: 112 <= 112.5 ok; k=2: 118 > 112.5 fail -> G = 4.
        let g = growth_factor(&cfg, &inputs(1, 106));
        assert_eq!(g, 4);
    }

    #[test]
    fn zero_ack_train_is_fine() {
        // Degenerate single-ACK round: Δt = 0 passes condition 1.
        let g = growth_factor(&SussConfig::default(), &inputs(0, 100));
        assert_eq!(g, 4);
    }
}

/// Algorithm 1 exactly as printed in Appendix A, for comparison.
///
/// The printed pseudocode tests `Δt ≤ minRTT/2^(k+1)` with the *current*
/// `k` and then increments, returning `2^(k+1)`. Tracing it: if the k = 0
/// test (`Δt ≤ minRTT/2`) passes and the k = 1 test fails, it returns
/// G = 4 — i.e. it grants a 4× factor from the *current-round* condition
/// (Eq. 2) instead of the next-round condition the main text derives
/// (Eq. 6, `Δt ≤ minRTT/4`). With `k_max = 1` and both tests passing it
/// returns G = 8, which the main text never allows. We treat the main
/// text as normative ([`growth_factor`]); this literal transcription
/// exists so the divergence is executable and documented rather than
/// silently patched. See `DESIGN.md` §4.
pub fn growth_factor_algorithm1_literal(cfg: &SussConfig, inputs: &GrowthInputs) -> u32 {
    if !cfg.enabled {
        return 2;
    }
    let mut k = 0u32;
    while k <= cfg.k_max {
        let c1 = condition1(inputs.ack_train, inputs.min_rtt, k, cfg.ack_train_divisor);
        let c2 = inputs.rounds_since_min_rtt == 0
            || condition2(
                inputs.mo_rtt,
                inputs.min_rtt,
                inputs.rounds_since_min_rtt,
                k,
                cfg.delay_factor,
            );
        if c1 && c2 {
            k += 1;
        } else {
            break;
        }
    }
    1u32 << (k + 1)
}

#[cfg(test)]
mod literal_tests {
    use super::*;
    use std::time::Duration;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    /// Executable documentation of the Appendix-A off-by-one: on a path
    /// where the main text prescribes G = 4, the literal algorithm
    /// returns G = 8, and on a borderline path (train between minRTT/4
    /// and minRTT/2) the literal algorithm accelerates where the main
    /// text does not.
    #[test]
    fn literal_algorithm_diverges_from_main_text() {
        let cfg = SussConfig::default(); // k_max = 1
                                         // Fast path: main text says G = 4 (Eq. 6 satisfied).
        let fast = GrowthInputs {
            ack_train: ms(10),
            min_rtt: ms(100),
            mo_rtt: ms(101),
            rounds_since_min_rtt: 1,
        };
        assert_eq!(growth_factor(&cfg, &fast), 4);
        assert_eq!(growth_factor_algorithm1_literal(&cfg, &fast), 8);

        // Borderline: train in (minRTT/4, minRTT/2]; main text keeps G = 2,
        // the literal transcription grants 4.
        let borderline = GrowthInputs {
            ack_train: ms(40),
            min_rtt: ms(100),
            mo_rtt: ms(101),
            rounds_since_min_rtt: 1,
        };
        assert_eq!(growth_factor(&cfg, &borderline), 2);
        assert_eq!(growth_factor_algorithm1_literal(&cfg, &borderline), 4);

        // Congested: both agree on G = 2.
        let congested = GrowthInputs {
            ack_train: ms(60),
            min_rtt: ms(100),
            mo_rtt: ms(130),
            rounds_since_min_rtt: 1,
        };
        assert_eq!(growth_factor(&cfg, &congested), 2);
        assert_eq!(growth_factor_algorithm1_literal(&cfg, &congested), 2);
    }
}
