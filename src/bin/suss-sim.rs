//! `suss-sim` — ad-hoc single-download simulation CLI.
//!
//! ```text
//! suss-sim [--site <name>] [--hop 5g|wired|wifi|4g] [--size <bytes|K|M>]
//!          [--cc cubic|suss|bbr|bbr2|bbr-suss|reno|hspp] [--seed N]
//!          [--iters N] [--workers N] [--trace]
//! ```
//!
//! Multi-iteration runs (`--iters` > 1) execute as a simrunner campaign:
//! the seeds shard across `--workers` threads (0 = all cores) with
//! identical results at any worker count.
//!
//! Examples:
//!
//! ```text
//! suss-sim --site tokyo --hop wifi --size 2M --cc suss
//! suss-sim --site london --hop 5g --size 500K --cc cubic --iters 10
//! ```

use suss_repro::prelude::*;
use suss_repro::stats::Summary;

fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(x) = s.strip_suffix(['M', 'm']) {
        return x.parse::<f64>().ok().map(|v| (v * 1e6) as u64);
    }
    if let Some(x) = s.strip_suffix(['K', 'k']) {
        return x.parse::<f64>().ok().map(|v| (v * 1e3) as u64);
    }
    s.parse().ok()
}

fn parse_site(s: &str) -> Option<ServerSite> {
    Some(match s.to_lowercase().as_str() {
        "us-east" | "useast" | "google-us-east" => ServerSite::GoogleUsEast,
        "tokyo" | "google-tokyo" => ServerSite::GoogleTokyo,
        "singapore" | "google-singapore" => ServerSite::GoogleSingapore,
        "us-west" | "uswest" | "oracle-us-west" => ServerSite::OracleUsWest,
        "sydney" | "oracle-sydney" => ServerSite::OracleSydney,
        "london" | "oracle-london" => ServerSite::OracleLondon,
        "nz" | "campus" | "nz-campus" => ServerSite::NzCampus,
        _ => return None,
    })
}

fn parse_hop(s: &str) -> Option<LastHop> {
    Some(match s.to_lowercase().as_str() {
        "5g" => LastHop::FiveG,
        "wired" | "ethernet" => LastHop::Wired,
        "wifi" => LastHop::WiFi,
        "4g" | "lte" => LastHop::FourG,
        _ => return None,
    })
}

fn parse_cc(s: &str) -> Option<CcKind> {
    Some(match s.to_lowercase().as_str() {
        "cubic" => CcKind::Cubic,
        "suss" | "cubic+suss" | "cubic-suss" => CcKind::CubicSuss,
        "bbr" => CcKind::Bbr,
        "bbr2" => CcKind::Bbr2,
        "bbr-suss" | "bbr+suss" => CcKind::BbrSuss,
        "reno" => CcKind::Reno,
        "hspp" | "hystart++" | "cubic+hspp" => CcKind::CubicHspp,
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: suss-sim [--site us-east|tokyo|singapore|us-west|sydney|london|nz]\n\
         \x20               [--hop 5g|wired|wifi|4g] [--size <bytes|K|M>]\n\
         \x20               [--cc cubic|suss|bbr|bbr2|bbr-suss|reno|hspp]\n\
         \x20               [--seed N] [--iters N] [--workers N] [--trace]"
    );
    std::process::exit(2);
}

/// Write the flow's samples, events, and counters as JSONL (flow id 1,
/// run label = the controller's name), for `suss-trace` to query.
fn export_trace(path: &str, out: &suss_repro::exp::FlowOutcome, run: &str) {
    use simtrace::EventSink as _;
    let path = std::path::Path::new(path);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            return;
        }
    };
    let mut sink = simtrace::JsonlSink::new(std::io::BufWriter::new(file));
    out.trace.export(1, Some(run), &mut sink);
    let t_end = out
        .trace
        .samples
        .last()
        .map(|s| s.t.as_nanos())
        .max(out.trace.events.last().map(|(t, _)| t.as_nanos()))
        .unwrap_or(0);
    simtrace::export_counters(&out.counters, t_end, Some(run), &mut sink);
    match sink.flush() {
        Ok(()) => eprintln!("trace: {}", path.display()),
        Err(e) => eprintln!("trace write failed: {e}"),
    }
}

fn main() {
    let mut site = ServerSite::GoogleTokyo;
    let mut hop = LastHop::WiFi;
    let mut size = 2 * MB;
    let mut cc = CcKind::CubicSuss;
    let mut seed = 1u64;
    let mut iters = 1u64;
    let mut workers = 0usize;
    let mut trace = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| args.get(i + 1).unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--site" => {
                site = parse_site(need(i)).unwrap_or_else(|| usage());
                i += 1;
            }
            "--hop" => {
                hop = parse_hop(need(i)).unwrap_or_else(|| usage());
                i += 1;
            }
            "--size" => {
                size = parse_size(need(i)).unwrap_or_else(|| usage());
                i += 1;
            }
            "--cc" => {
                cc = parse_cc(need(i)).unwrap_or_else(|| usage());
                i += 1;
            }
            "--seed" => {
                seed = need(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--iters" => {
                iters = need(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--workers" => {
                workers = need(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--trace" => trace = true,
            _ => usage(),
        }
        i += 1;
    }
    // `SUSS_TRACE=path` implies tracing: the export needs the samples.
    let trace_out = std::env::var("SUSS_TRACE").ok().filter(|p| !p.is_empty());
    if trace_out.is_some() {
        trace = true;
    }

    let path = PathScenario::new(site, hop);
    println!(
        "{} | {} | {} bytes | minRTT {:.0} ms | bottleneck {} | buffer {:.1} BDP\n",
        path.id(),
        cc.label(),
        size,
        path.min_rtt().as_secs_f64() * 1e3,
        path.bottleneck,
        path.buffer_bdp
    );

    if iters == 1 {
        let out = run_flow(&path, cc, size, seed, trace);
        println!("fct            : {:.3} s", out.fct_secs());
        println!(
            "goodput        : {:.2} Mbps",
            size as f64 * 8.0 / out.fct_secs() / 1e6
        );
        println!("segments sent  : {}", out.segs_sent);
        println!(
            "retransmitted  : {} ({:.2}%)",
            out.segs_retransmitted,
            out.retransmit_rate * 100.0
        );
        println!("bottleneck drops: {}", out.bottleneck_drops);
        println!("suss pacings   : {}", out.suss_pacings);
        if trace {
            if let Some((t, _)) =
                out.trace.events.iter().find(|(_, e)| {
                    matches!(e, suss_repro::transport::TraceEvent::SlowStartExit { .. })
                })
            {
                println!("slow-start exit: t = {:.3} s", t.as_secs_f64());
            }
            println!("trace samples  : {}", out.trace.samples.len());
        }
        if let Some(path) = &trace_out {
            export_trace(path, &out, &cc.label());
        }
    } else {
        let mut grid = FlowGrid::new("suss-sim");
        let batch = grid.batch(&path, cc, size, iters, seed);
        let run = grid.run(&RunnerOpts::default().with_workers(workers));
        let s: Summary = run.fct(batch);
        println!(
            "fct over {} iters: mean {:.3} s  σ {:.3}  min {:.3}  max {:.3}  (95% CI ±{:.3})",
            s.n,
            s.mean,
            s.std_dev,
            s.min,
            s.max,
            s.ci95_half_width()
        );
    }
}
