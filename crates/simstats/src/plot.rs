//! Terminal plotting: compact ASCII line charts for the figure binaries.
//!
//! Not a replacement for real plotting — just enough to *see* cwnd ramps,
//! delivery curves and fairness recovery directly in the terminal output
//! of `fig*` binaries.

/// Render one or more named series as an ASCII chart.
///
/// Each series is a list of `(x, y)` points (x ascending). All series share
/// the axes; each gets a distinct glyph. Returns a multi-line string.
pub fn ascii_chart(
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in s.iter() {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            // First-drawn series wins collisions (legend order = priority).
            if grid[row][col] == ' ' {
                grid[row][col] = glyph;
            }
        }
    }

    let mut out = String::new();
    let y_top = format!("{y_max:.1}");
    let y_bot = format!("{y_min:.1}");
    let margin = y_top.len().max(y_bot.len());
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_top:>margin$}")
        } else if r == height - 1 {
            format!("{y_bot:>margin$}")
        } else {
            " ".repeat(margin)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(margin));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}{:<12.2}{:>width$.2}  ({x_label} →, {y_label} ↑)\n",
        " ".repeat(margin),
        x_min,
        x_max,
        width = width.saturating_sub(12)
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect();
    out.push_str(&format!("{}  {}\n", " ".repeat(margin), legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_two_series() {
        let a: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, (i * i) as f64)).collect();
        let b: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, (2 * i) as f64)).collect();
        let s = ascii_chart(&[("quad", &a), ("lin", &b)], 40, 10, "t", "v");
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("quad") && s.contains("lin"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 12);
    }

    #[test]
    fn handles_empty_and_flat() {
        assert_eq!(ascii_chart(&[("x", &[])], 20, 5, "t", "v"), "(no data)\n");
        let flat = [(0.0, 5.0), (1.0, 5.0)];
        let s = ascii_chart(&[("flat", &flat)], 20, 5, "t", "v");
        assert!(s.contains('*'));
    }

    #[test]
    fn ignores_non_finite() {
        let with_nan = [(0.0, 1.0), (1.0, f64::NAN), (2.0, 3.0)];
        let s = ascii_chart(&[("s", &with_nan)], 20, 5, "t", "v");
        assert!(s.contains('*'));
    }

    #[test]
    #[should_panic]
    fn tiny_chart_rejected() {
        ascii_chart(&[("s", &[(0.0, 0.0)])], 4, 2, "t", "v");
    }
}
