//! Calendar-queue timer wheel for the event scheduler.
//!
//! The simulator dispatches events in `(time, insertion-seq)` order. A
//! binary heap gives that order at `O(log n)` per operation with poor cache
//! locality; this wheel gives amortized `O(1)` pushes and pops for the
//! near-future events that dominate a packet simulation (serialization
//! completions, propagation arrivals, pacing timers), while far timers
//! (RTOs, experiment horizons) wait in a small overflow heap and *cascade*
//! into the wheel as time approaches them.
//!
//! Layout: one ring of [`NUM_BUCKETS`] buckets at [`TICK_NANOS`]-nanosecond
//! granularity (a window of ~268 ms — wider than any modeled RTT, so the
//! common path never touches the overflow heap). A bucket collects every
//! event whose tick lands on it; when the wheel advances to that tick the
//! bucket is sorted by `(at, seq)` and drained into a FIFO dispatch buffer.
//! Because `seq` values are unique and monotone, this reproduces the heap's
//! global dispatch order *exactly* — same-tick FIFO included — which is
//! what keeps `FlowStats`, counter totals, and cache keys byte-identical
//! across the two schedulers (see `tests/wheel_equivalence.rs`).
//!
//! Buckets are drained with `Vec::drain`, so their allocations are
//! recycled: after warm-up the push/pop path allocates nothing.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Nanoseconds per wheel tick (2^16 ≈ 65.5 µs).
#[cfg(test)]
pub(crate) const TICK_NANOS: u64 = 1 << TICK_SHIFT;
const TICK_SHIFT: u32 = 16;
/// Buckets in the ring; window = `NUM_BUCKETS * TICK_NANOS` ≈ 268 ms.
pub(crate) const NUM_BUCKETS: u64 = 4096;
const MASK: u64 = NUM_BUCKETS - 1;
const WORDS: usize = (NUM_BUCKETS / 64) as usize;

/// A scheduled event: absolute time, global insertion sequence, payload.
pub(crate) struct WheelEntry<T> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) item: T,
}

/// Overflow-heap wrapper: reversed `(at, seq)` order so the `BinaryHeap`
/// max-heap pops the earliest entry first.
struct Overflow<T>(WheelEntry<T>);

impl<T> PartialEq for Overflow<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for Overflow<T> {}
impl<T> PartialOrd for Overflow<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Overflow<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// The wheel. Generic over the event payload so the ordering contract can
/// be unit-tested without dragging in packets and agents.
pub(crate) struct TimerWheel<T> {
    /// Tick whose events are currently being dispatched from `current`.
    current_tick: u64,
    /// Events at `current_tick`, sorted by `(at, seq)`; popped from front.
    current: VecDeque<WheelEntry<T>>,
    /// Ring buckets; bucket `b` holds the events of the unique tick
    /// `t ≡ b (mod NUM_BUCKETS)` inside the window `(current_tick,
    /// current_tick + NUM_BUCKETS)`.
    buckets: Vec<Vec<WheelEntry<T>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Events beyond the wheel window, waiting to cascade in.
    overflow: BinaryHeap<Overflow<T>>,
    /// Entries currently stored in `buckets`.
    wheel_len: usize,
    /// Total entries (current + buckets + overflow).
    len: usize,
    /// Times an overflow entry was moved into the ring.
    cascades: u64,
}

impl<T> TimerWheel<T> {
    pub(crate) fn new() -> Self {
        TimerWheel {
            current_tick: 0,
            current: VecDeque::new(),
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            len: 0,
            cascades: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Times a far timer cascaded from the overflow heap into the ring.
    pub(crate) fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Schedule an event. `seq` must be strictly greater than every
    /// previously pushed `seq` (the engine's global insertion counter).
    pub(crate) fn push(&mut self, at: SimTime, seq: u64, item: T) {
        let tick = at.as_nanos() >> TICK_SHIFT;
        let entry = WheelEntry { at, seq, item };
        if tick <= self.current_tick {
            // Lands on the tick being dispatched: insert in sorted position.
            // `seq` is larger than every queued seq, so it goes after all
            // entries with an earlier-or-equal timestamp.
            let idx = self.current.partition_point(|e| e.at <= at);
            self.current.insert(idx, entry);
        } else if tick - self.current_tick < NUM_BUCKETS {
            self.bucket_insert(tick, entry);
        } else {
            self.overflow.push(Overflow(entry));
        }
        self.len += 1;
    }

    /// Earliest pending event time, advancing the wheel if needed to find
    /// it (advancing never changes dispatch order).
    pub(crate) fn next_at(&mut self) -> Option<SimTime> {
        loop {
            if let Some(e) = self.current.front() {
                return Some(e.at);
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Remove and return the earliest event (ties in insertion order).
    pub(crate) fn pop(&mut self) -> Option<WheelEntry<T>> {
        loop {
            if let Some(e) = self.current.pop_front() {
                self.len -= 1;
                return Some(e);
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    fn bucket_insert(&mut self, tick: u64, entry: WheelEntry<T>) {
        let b = (tick & MASK) as usize;
        self.buckets[b].push(entry);
        self.occupied[b >> 6] |= 1 << (b & 63);
        self.wheel_len += 1;
    }

    /// Jump `current_tick` to the next tick holding events, cascade any
    /// overflow entries that the move brought inside the window, and drain
    /// that tick's bucket (sorted) into the dispatch buffer.
    fn advance(&mut self) {
        debug_assert!(self.current.is_empty());
        let wheel_next = (self.wheel_len > 0).then(|| self.scan_next());
        let over_next = self
            .overflow
            .peek()
            .map(|e| e.0.at.as_nanos() >> TICK_SHIFT);
        self.current_tick = match (wheel_next, over_next) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => return,
        };
        while let Some(top) = self.overflow.peek() {
            let tick = top.0.at.as_nanos() >> TICK_SHIFT;
            if tick - self.current_tick >= NUM_BUCKETS {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry").0;
            self.bucket_insert(tick, entry);
            self.cascades += 1;
        }
        let b = (self.current_tick & MASK) as usize;
        let bucket = &mut self.buckets[b];
        bucket.sort_unstable_by(|x, y| x.at.cmp(&y.at).then_with(|| x.seq.cmp(&y.seq)));
        self.wheel_len -= bucket.len();
        self.current.extend(bucket.drain(..));
        self.occupied[b >> 6] &= !(1 << (b & 63));
    }

    /// Smallest tick strictly after `current_tick` with a non-empty bucket.
    /// Caller guarantees the ring holds at least one entry.
    fn scan_next(&self) -> u64 {
        let start = ((self.current_tick + 1) & MASK) as usize;
        for step in 0..=WORDS {
            let w = (start / 64 + step) % WORDS;
            let mut word = self.occupied[w];
            if step == 0 {
                word &= !0u64 << (start & 63);
            } else if step == WORDS {
                word &= (1u64 << (start & 63)) - 1;
            }
            if word != 0 {
                let b = (w * 64 + word.trailing_zeros() as usize) as u64;
                let dist = b.wrapping_sub(self.current_tick + 1) & MASK;
                return self.current_tick + 1 + dist;
            }
        }
        unreachable!("scan_next on an empty ring")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push((e.at.as_nanos(), e.item));
        }
        out
    }

    #[test]
    fn same_tick_fifo_order() {
        // Many events at the same instant must pop in insertion order.
        let mut w = TimerWheel::new();
        let at = SimTime::from_micros(10);
        for seq in 1..=50u64 {
            w.push(at, seq, seq);
        }
        let got: Vec<u64> = drain(&mut w).into_iter().map(|(_, i)| i).collect();
        assert_eq!(got, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn matches_global_time_seq_order() {
        // A scrambled schedule pops in exactly (at, seq) order, including
        // distinct times that share one wheel tick.
        let mut w = TimerWheel::new();
        let mut expect = Vec::new();
        let mut seq = 0u64;
        let mut x = 0x2545_F491u64;
        for _ in 0..2000 {
            // Deterministic xorshift covering same-tick and cross-bucket cases.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let at = SimTime::from_nanos(x % (50 * TICK_NANOS));
            seq += 1;
            w.push(at, seq, seq);
            expect.push((at.as_nanos(), seq));
        }
        expect.sort();
        assert_eq!(drain(&mut w), expect);
    }

    #[test]
    fn overflow_cascades_in_order() {
        // Events far beyond the window must cascade in and still dispatch
        // in global order.
        let mut w = TimerWheel::new();
        let far = NUM_BUCKETS * TICK_NANOS;
        w.push(SimTime::from_nanos(3 * far), 1, 1);
        w.push(SimTime::from_nanos(100), 2, 2);
        w.push(SimTime::from_nanos(2 * far), 3, 3);
        w.push(SimTime::from_nanos(3 * far), 4, 4);
        let got: Vec<u64> = drain(&mut w).into_iter().map(|(_, i)| i).collect();
        assert_eq!(got, vec![2, 3, 1, 4]);
        assert!(w.cascades() > 0, "far timers must cascade, not teleport");
    }

    #[test]
    fn push_onto_current_tick_keeps_order() {
        // While dispatching tick T, a new event at the same tick but a
        // later timestamp must slot after pending earlier timestamps.
        let mut w = TimerWheel::new();
        w.push(SimTime::from_nanos(10), 1, 1);
        w.push(SimTime::from_nanos(30), 2, 2);
        assert_eq!(w.pop().unwrap().item, 1);
        // Same instant as the pending event: FIFO ⇒ after it.
        w.push(SimTime::from_nanos(30), 3, 3);
        // Earlier instant than the pending event: before it.
        w.push(SimTime::from_nanos(20), 4, 4);
        let got: Vec<u64> = drain(&mut w).into_iter().map(|(_, i)| i).collect();
        assert_eq!(got, vec![4, 2, 3]);
    }

    #[test]
    fn next_at_peeks_without_reordering() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_millis(500), 1, 1); // overflow territory
        w.push(SimTime::from_nanos(5), 2, 2);
        assert_eq!(w.next_at(), Some(SimTime::from_nanos(5)));
        assert_eq!(w.pop().unwrap().item, 2);
        assert_eq!(w.next_at(), Some(SimTime::from_millis(500)));
        assert_eq!(w.pop().unwrap().item, 1);
        assert_eq!(w.next_at(), None);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn empty_wheel_behaves() {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        assert!(w.pop().is_none());
        assert_eq!(w.next_at(), None);
        assert_eq!(w.len(), 0);
    }
}
