//! Campaigns: grids of independent simulation cells, plus the options
//! surface ([`RunnerOpts`]) that selects and configures an executor.
//!
//! Execution itself lives in [`crate::exec`]: a [`Campaign`] is pure
//! data, and [`Campaign::run`] hands it to any [`Executor`] — the
//! deterministic thread pool, the work-stealing local executor, or the
//! multi-process shard coordinator. All executors commit results by cell
//! index, so the output is byte-identical regardless of worker count,
//! scheduling, cache state, or sharding.

use crate::cache::{Cache, CellIdentity};
use crate::exec::Executor;
use crate::manifest::{nearest_rank, CellRecord, CellStatus, RunManifest, ShardInfo};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::thread;
use std::time::{Duration, Instant};

/// One grid cell: a single deterministic simulation run.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Position in campaign order (set by [`Campaign::cell`]).
    pub index: usize,
    /// Human-readable label for progress lines and manifests.
    pub label: String,
    /// Canonical parameter string; part of the cache identity, so it must
    /// encode **every** input that influences the cell's result.
    pub params: String,
    /// The seed driving all stochastic path elements of this cell.
    pub seed: u64,
}

/// What to do when cells fail (panic, exhaust retries, or time out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Panic after the campaign drains, naming the first failed cell —
    /// the right default for figure pipelines, where a failed cell means
    /// a bug and silently aggregating fewer samples would corrupt the
    /// science. Successful cells are already cached by then, so a re-run
    /// resumes from where it failed.
    #[default]
    Raise,
    /// Record failures in the manifest and return `None` slots — for
    /// chaos campaigns and anything that treats failures as data.
    Record,
}

/// Which executor [`RunnerOpts::executor`] builds.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ExecSpec {
    /// The deterministic token-tracked thread pool with panic isolation,
    /// bounded retries and watchdogs (the default).
    #[default]
    Pool,
    /// The work-stealing local executor: workers pull cells from
    /// per-worker deques and steal from the back of their neighbours'.
    /// Results still commit in canonical cell order. No watchdog support.
    WorkStealing,
    /// Run only the cells owned by shard `index` of `total` (round-robin
    /// by cell index) and write a shard manifest next to the campaign's
    /// manifest stem. Set by `SUSS_SHARD=k/N` in shard child processes.
    Shard {
        /// This process's shard index, in `0..total`.
        index: usize,
        /// Number of shards the campaign is split into.
        total: usize,
    },
    /// Split the campaign into `shards` shard runs against the shared
    /// cache, then merge the shard manifests and reload the results —
    /// indistinguishable from a single-process run. With `argv: Some`,
    /// shards run as child processes of the current executable with those
    /// arguments (plus `SUSS_SHARD=k/N` in the environment); with
    /// `argv: None` they run in-process, one after another.
    Coordinator {
        /// How many shards to split into.
        shards: usize,
        /// Child-process arguments, or `None` for in-process shards.
        argv: Option<Vec<String>>,
    },
    /// Merge already-written shard manifests (e.g. from runs on other
    /// machines against the shared cache) without executing anything.
    MergeShards {
        /// How many shard manifests to expect.
        shards: usize,
    },
}

/// How to execute a campaign: worker counts, caching, resilience,
/// observability, and which [`Executor`] to build.
///
/// # Environment knobs
///
/// [`RunnerOpts::from_env`] (and [`env_overrides`](RunnerOpts::env_overrides),
/// which layers the same variables over explicit options) is the single
/// parsing path for every `SUSS_*` runner knob. Malformed values never
/// abort a campaign: each one warns on stderr and keeps the prior value.
///
/// | Variable | Effect |
/// |---|---|
/// | `SUSS_WORKERS` | worker threads (`0` = auto) |
/// | `SUSS_CACHE_DIR` | result-cache root (empty = keep current) |
/// | `SUSS_NO_CACHE` | `1` disables the cache entirely |
/// | `SUSS_FORCE_COLD` | `1` ignores existing entries (still stores) |
/// | `SUSS_PROGRESS` | `0` disables, anything else enables |
/// | `SUSS_CACHE_MAX_BYTES` | LRU cap, `K`/`M`/`G` suffixes allowed |
/// | `SUSS_CELL_TIMEOUT_MS` | per-cell wall budget (`0` disables) |
/// | `SUSS_STALL_TIMEOUT_MS` | per-cell progress watchdog (`0` disables) |
/// | `SUSS_CELL_RETRIES` | panic retry budget per cell |
/// | `SUSS_PROF` | `0` disables, anything else enables the span profiler |
/// | `SUSS_FLIGHTREC_DIR` | crash-dump directory (empty disables) |
/// | `SUSS_EXECUTOR` | `pool` or `steal` |
/// | `SUSS_SHARD` | `k/N`: run as shard `k` of `N` and exit afterwards |
/// | `SUSS_SHARD_LEASE_MS` | heartbeat lease on shard children (`0` disables) |
/// | `SUSS_SHARD_RESTARTS` | dead-shard restart budget before inline reassignment |
/// | `SUSS_CHAOS_KILL_SHARD` | `k:after_cells` — shard `k` SIGKILLs itself mid-run |
///
/// (`SUSS_TRACE` — the event-trace output path — is consumed by the
/// bench CLI and `suss-sim`, not by the runner; it selects where traces
/// go, not how cells execute.)
#[derive(Debug, Clone)]
pub struct RunnerOpts {
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    pub workers: usize,
    /// Result-cache root (e.g. `results/cache`); `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Ignore existing cache entries (results are still stored back).
    pub force_cold: bool,
    /// Stream progress to stderr.
    pub progress: bool,
    /// Size cap for the whole cache root; after the run, least-recently
    /// used entries are evicted until the cache fits. `None` = unbounded.
    pub cache_max_bytes: Option<u64>,
    /// Per-cell wall-clock budget (pool executor): a cell still computing
    /// past this is abandoned as [`TimedOut`](CellStatus::TimedOut).
    /// `None` = unbounded.
    pub cell_timeout: Option<Duration>,
    /// Per-cell progress watchdog (pool executor): a cell whose
    /// simulation dispatches no events for this long (the livelock
    /// signature — wall clock advances, sim time doesn't) is abandoned as
    /// [`TimedOut`](CellStatus::TimedOut). `None` disables the watchdog.
    pub stall_timeout: Option<Duration>,
    /// How many times a panicking cell is re-run (with linear backoff)
    /// before being recorded as [`Panicked`](CellStatus::Panicked).
    pub cell_retries: u32,
    /// Enable the span profiler (`simtrace::prof`) around each computed
    /// cell; per-cell snapshots merge into [`RunManifest::prof`].
    /// Observability-only: results are byte-identical either way.
    pub profile: bool,
    /// Directory for flight-recorder crash dumps. When set, the pool
    /// executor arms a bounded ring of recent [`simtrace::TraceRecord`]s
    /// per in-flight cell and dumps it to `<dir>/<cell>.jsonl` when the
    /// cell terminally panics or is abandoned by the watchdog. `None`
    /// disables the recorder.
    pub flightrec_dir: Option<PathBuf>,
    /// What to do when cells fail terminally; see [`FailurePolicy`].
    pub on_failure: FailurePolicy,
    /// Which executor [`RunnerOpts::executor`] builds.
    pub executor: ExecSpec,
    /// Path stem for campaign manifests (shard manifests land at
    /// `<stem>.shard<k>of<N>.manifest.json`, the shard plan at
    /// `<stem>.shardplan.json`). `None` defaults to
    /// `results/<experiment>`.
    pub manifest_stem: Option<PathBuf>,
    /// Whether a [`ExecSpec::Shard`] run exits the process after writing
    /// its shard manifest (exit code 0, or 3 when cells failed). Set when
    /// sharding comes from `SUSS_SHARD` — a shard child must not fall
    /// through into the bin's figure rendering on partial results.
    /// In-process shard executors (tests, the in-process coordinator)
    /// leave this `false`.
    pub shard_exit: bool,
    /// Heartbeat lease for shard children (coordinator): a shard whose
    /// progress epoch has not advanced for this long is declared dead —
    /// killed, then restarted or reassigned. Stall-aware like the
    /// per-cell watchdog: a slow shard that keeps advancing its epoch is
    /// never expired. `None` disables the lease (abnormal exits are
    /// still detected via the child's exit status).
    pub shard_lease: Option<Duration>,
    /// How many times the coordinator restarts a dead shard child (with
    /// linear backoff) before giving up and reassigning its remaining
    /// cells inline. `0` skips straight to reassignment.
    pub shard_restarts: u32,
    /// Chaos injection `(shard_index, after_cells)`: the matching shard
    /// child SIGKILLs itself after computing that many cache-miss cells.
    /// Armed only in processes whose shard came from `SUSS_SHARD`
    /// ([`shard_exit`](Self::shard_exit)), so a coordinator or inline
    /// recovery pass sharing the environment never kills itself.
    pub chaos_kill_shard: Option<(usize, u64)>,
}

impl Default for RunnerOpts {
    fn default() -> Self {
        RunnerOpts {
            workers: 0,
            cache_dir: None,
            force_cold: false,
            progress: false,
            cache_max_bytes: None,
            cell_timeout: None,
            stall_timeout: None,
            cell_retries: 0,
            profile: false,
            flightrec_dir: None,
            on_failure: FailurePolicy::default(),
            executor: ExecSpec::default(),
            manifest_stem: None,
            shard_exit: false,
            shard_lease: None,
            // One free restart by default: a transient death (OOM kill,
            // operator mistake) recovers without any knob-turning.
            shard_restarts: 1,
            chaos_kill_shard: None,
        }
    }
}

impl RunnerOpts {
    /// Single-worker execution (the reference serial path).
    pub fn serial() -> Self {
        RunnerOpts {
            workers: 1,
            ..Self::default()
        }
    }

    /// Build options purely from `SUSS_*` environment variables layered
    /// over the defaults. See the [type docs](RunnerOpts) for the
    /// variable table; this and [`env_overrides`](Self::env_overrides)
    /// share one parsing path.
    pub fn from_env() -> Self {
        Self::default().env_overrides()
    }

    /// Set the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enable the result cache rooted at `dir`.
    pub fn with_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Enable stderr progress reporting.
    pub fn with_progress(mut self) -> Self {
        self.progress = true;
        self
    }

    /// Cap the cache root at `max_bytes` (LRU-swept after each run).
    pub fn with_cache_max_bytes(mut self, max_bytes: u64) -> Self {
        self.cache_max_bytes = Some(max_bytes);
        self
    }

    /// Set the per-cell wall-clock budget (pool executor).
    pub fn with_cell_timeout(mut self, timeout: Duration) -> Self {
        self.cell_timeout = Some(timeout);
        self
    }

    /// Set the per-cell progress-stall watchdog (pool executor).
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self
    }

    /// Set the panic retry budget.
    pub fn with_cell_retries(mut self, retries: u32) -> Self {
        self.cell_retries = retries;
        self
    }

    /// Enable the per-cell span profiler.
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Enable flight-recorder crash dumps under `dir` (pool executor).
    pub fn with_flightrec_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.flightrec_dir = Some(dir.into());
        self
    }

    /// Record cell failures in the manifest instead of panicking
    /// ([`FailurePolicy::Record`]).
    pub fn record_failures(mut self) -> Self {
        self.on_failure = FailurePolicy::Record;
        self
    }

    /// Select which executor [`RunnerOpts::executor`] builds.
    pub fn with_executor(mut self, spec: ExecSpec) -> Self {
        self.executor = spec;
        self
    }

    /// Set the manifest path stem (see [`RunnerOpts::manifest_stem`]).
    pub fn with_manifest_stem(mut self, stem: impl Into<PathBuf>) -> Self {
        self.manifest_stem = Some(stem.into());
        self
    }

    /// Set the shard heartbeat lease (see [`RunnerOpts::shard_lease`]).
    pub fn with_shard_lease(mut self, lease: Duration) -> Self {
        self.shard_lease = Some(lease);
        self
    }

    /// Set the dead-shard restart budget
    /// (see [`RunnerOpts::shard_restarts`]).
    pub fn with_shard_restarts(mut self, restarts: u32) -> Self {
        self.shard_restarts = restarts;
        self
    }

    /// Apply the `SUSS_*` environment overrides on top of these options
    /// (see the [type docs](RunnerOpts) for the variable table), warning
    /// on stderr about malformed values.
    pub fn env_overrides(self) -> Self {
        let (opts, warnings) = self.apply_env(|k| std::env::var(k).ok());
        for w in warnings {
            eprintln!("warning: {w}");
        }
        opts
    }

    /// The pure core of [`env_overrides`](Self::env_overrides): apply the
    /// `SUSS_*` knobs read through `get`, returning the updated options
    /// and a warning per malformed value (the prior value is kept).
    /// Injectable so the parsing path is testable without mutating
    /// process-global environment state.
    pub fn apply_env(mut self, get: impl Fn(&str) -> Option<String>) -> (Self, Vec<String>) {
        let mut warnings = Vec::new();
        let mut warn = |key: &str, val: &str, want: &str| {
            warnings.push(format!("ignoring {key}={val:?}: expected {want}"));
        };
        if let Some(w) = get("SUSS_WORKERS") {
            match w.parse() {
                Ok(w) => self.workers = w,
                Err(_) => warn("SUSS_WORKERS", &w, "a worker count"),
            }
        }
        if let Some(d) = get("SUSS_CACHE_DIR") {
            if !d.is_empty() {
                self.cache_dir = Some(PathBuf::from(d));
            }
        }
        if get("SUSS_NO_CACHE").is_some_and(|v| v == "1") {
            self.cache_dir = None;
        }
        if get("SUSS_FORCE_COLD").is_some_and(|v| v == "1") {
            self.force_cold = true;
        }
        if let Some(p) = get("SUSS_PROGRESS") {
            self.progress = p != "0";
        }
        if let Some(b) = get("SUSS_CACHE_MAX_BYTES") {
            match parse_bytes(&b) {
                Some(b) => self.cache_max_bytes = Some(b),
                None => warn(
                    "SUSS_CACHE_MAX_BYTES",
                    &b,
                    "bytes with optional K/M/G suffix",
                ),
            }
        }
        if let Some(ms) = get("SUSS_CELL_TIMEOUT_MS") {
            match ms.parse::<u64>() {
                Ok(ms) => self.cell_timeout = (ms > 0).then(|| Duration::from_millis(ms)),
                Err(_) => warn("SUSS_CELL_TIMEOUT_MS", &ms, "milliseconds (0 disables)"),
            }
        }
        if let Some(ms) = get("SUSS_STALL_TIMEOUT_MS") {
            match ms.parse::<u64>() {
                Ok(ms) => self.stall_timeout = (ms > 0).then(|| Duration::from_millis(ms)),
                Err(_) => warn("SUSS_STALL_TIMEOUT_MS", &ms, "milliseconds (0 disables)"),
            }
        }
        if let Some(r) = get("SUSS_CELL_RETRIES") {
            match r.parse() {
                Ok(r) => self.cell_retries = r,
                Err(_) => warn("SUSS_CELL_RETRIES", &r, "a retry count"),
            }
        }
        if let Some(p) = get("SUSS_PROF") {
            self.profile = p != "0";
        }
        if let Some(d) = get("SUSS_FLIGHTREC_DIR") {
            self.flightrec_dir = (!d.is_empty()).then(|| PathBuf::from(d));
        }
        if let Some(e) = get("SUSS_EXECUTOR") {
            match e.as_str() {
                "pool" => self.executor = ExecSpec::Pool,
                "steal" => self.executor = ExecSpec::WorkStealing,
                _ => warn("SUSS_EXECUTOR", &e, "`pool` or `steal`"),
            }
        }
        if let Some(s) = get("SUSS_SHARD") {
            match parse_shard(&s) {
                Some((index, total)) => {
                    self.executor = ExecSpec::Shard { index, total };
                    // Env-driven sharding means "this process is shard
                    // k/N of a coordinated run": write the shard manifest
                    // and exit rather than rendering figures from a
                    // partial result set.
                    self.shard_exit = true;
                }
                None => warn("SUSS_SHARD", &s, "`k/N` with k < N"),
            }
        }
        if let Some(ms) = get("SUSS_SHARD_LEASE_MS") {
            match ms.parse::<u64>() {
                Ok(ms) => self.shard_lease = (ms > 0).then(|| Duration::from_millis(ms)),
                Err(_) => warn("SUSS_SHARD_LEASE_MS", &ms, "milliseconds (0 disables)"),
            }
        }
        if let Some(r) = get("SUSS_SHARD_RESTARTS") {
            match r.parse() {
                Ok(r) => self.shard_restarts = r,
                Err(_) => warn("SUSS_SHARD_RESTARTS", &r, "a restart budget"),
            }
        }
        if let Some(spec) = get("SUSS_CHAOS_KILL_SHARD") {
            match parse_kill_shard(&spec) {
                Some(v) => self.chaos_kill_shard = Some(v),
                None => warn("SUSS_CHAOS_KILL_SHARD", &spec, "`k:after_cells`"),
            }
        }
        (self, warnings)
    }

    pub(crate) fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The manifest path stem for `experiment`: the configured
    /// [`manifest_stem`](RunnerOpts::manifest_stem), or
    /// `results/<experiment>`.
    pub(crate) fn stem_for(&self, experiment: &str) -> PathBuf {
        self.manifest_stem
            .clone()
            .unwrap_or_else(|| Path::new("results").join(experiment))
    }
}

/// Parse `SUSS_CHAOS_KILL_SHARD`-style `k:after_cells` chaos specs.
fn parse_kill_shard(s: &str) -> Option<(usize, u64)> {
    let (k, after) = s.split_once(':')?;
    Some((k.trim().parse().ok()?, after.trim().parse().ok()?))
}

/// Parse `SUSS_SHARD`-style `k/N` shard coordinates.
fn parse_shard(s: &str) -> Option<(usize, usize)> {
    let (k, n) = s.split_once('/')?;
    let (k, n) = (
        k.trim().parse::<usize>().ok()?,
        n.trim().parse::<usize>().ok()?,
    );
    (k < n && n >= 1).then_some((k, n))
}

/// A named grid of cells, executed together.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Experiment id (cache namespace and manifest header).
    pub experiment: String,
    /// Code-relevant version tag: bump when a change invalidates cached
    /// results (simulator physics, experiment logic, value encoding).
    pub version: String,
    /// The cells, in aggregation order.
    pub cells: Vec<Cell>,
}

/// What [`Campaign::run`] returns, whichever executor ran it.
///
/// Failed (or shard-skipped) cells come back as `None` with their status
/// and terminal error recorded in the manifest; under the default
/// [`FailurePolicy::Raise`] a failure panics instead, so every slot is
/// `Some` by construction.
#[derive(Debug)]
pub struct CampaignReport<T> {
    /// Per-cell results in campaign (cell-index) order — independent of
    /// worker count, scheduling, cache state, and sharding. `None` marks
    /// a failed or skipped cell.
    pub results: Vec<Option<T>>,
    /// The run's manifest (timings, cache hits, per-cell records,
    /// failure totals, results digest).
    pub manifest: RunManifest,
}

impl<T> CampaignReport<T> {
    /// Whether every cell produced a result.
    pub fn all_ok(&self) -> bool {
        self.manifest.all_ok() && self.manifest.cells_skipped == 0
    }

    /// Unwrap every result, panicking with the first failed cell's label
    /// if any is missing. Infallible after a [`FailurePolicy::Raise`]
    /// run of an unsharded executor.
    pub fn expect_all(self) -> Vec<T> {
        if let Some(rec) = self.manifest.cells.iter().find(|r| !r.status.succeeded()) {
            panic!(
                "campaign '{}' cell '{}' has no result ({:?}: {})",
                self.manifest.experiment, rec.label, rec.status, rec.error
            );
        }
        self.results
            .into_iter()
            .map(|r| r.expect("statuses all succeeded"))
            .collect()
    }
}

impl Campaign {
    /// Create an empty campaign.
    pub fn new(experiment: impl Into<String>, version: impl Into<String>) -> Self {
        Campaign {
            experiment: experiment.into(),
            version: version.into(),
            cells: Vec::new(),
        }
    }

    /// Append a cell; returns its index.
    pub fn cell(
        &mut self,
        label: impl Into<String>,
        params: impl Into<String>,
        seed: u64,
    ) -> usize {
        let index = self.cells.len();
        self.cells.push(Cell {
            index,
            label: label.into(),
            params: params.into(),
            seed,
        });
        index
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the campaign has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Execute every cell on `exec` and return results in campaign order.
    ///
    /// Each cell is computed solely from its own [`Cell`] (independent
    /// seeding) and results commit by cell index, so the output — and
    /// anything aggregated from it in order — is byte-identical whether
    /// this runs on 1 worker or 64, work-stealing or statically sharded,
    /// cold or fully cached, in one process or merged from N shards.
    ///
    /// # Panics
    /// Under [`FailurePolicy::Raise`] (the default), re-raises the first
    /// cell failure (with the cell's label) after the campaign drains —
    /// successful cells are cached by then, so a re-run resumes from the
    /// failure.
    pub fn run<T, F, E>(&self, exec: &E, f: F) -> CampaignReport<T>
    where
        T: Serialize + Deserialize + Send + 'static,
        F: Fn(&Cell) -> T + Send + Sync + 'static,
        E: Executor,
    {
        exec.execute(self, f)
    }

    pub(crate) fn identity<'a>(&'a self, cell: &'a Cell) -> CellIdentity<'a> {
        CellIdentity {
            experiment: &self.experiment,
            version: &self.version,
            params: &cell.params,
            seed: cell.seed,
        }
    }

    /// Open the result cache, degrading to uncached execution (with a
    /// stderr warning) when the directory cannot be created — a read-only
    /// results volume shouldn't kill a multi-hour campaign.
    pub(crate) fn open_cache(&self, opts: &RunnerOpts) -> Option<Cache> {
        let root = opts.cache_dir.as_deref()?;
        match Cache::open(root, &self.experiment) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!(
                    "warning: cache disabled, cannot open {}: {e}",
                    root.display()
                );
                None
            }
        }
    }

    pub(crate) fn blank_records(&self) -> Vec<CellRecord> {
        self.cells
            .iter()
            .map(|c| CellRecord {
                index: c.index,
                label: c.label.clone(),
                seed: c.seed,
                key: format!("{:016x}", self.identity(c).key()),
                cached: false,
                wall_ms: 0.0,
                events: 0,
                status: CellStatus::Ok,
                attempts: 0,
                error: String::new(),
                flightrec: String::new(),
            })
            .collect()
    }

    /// Post-run LRU sweep over the whole cache root.
    pub(crate) fn sweep_cache(&self, opts: &RunnerOpts) {
        if let (Some(root), Some(max)) = (opts.cache_dir.as_deref(), opts.cache_max_bytes) {
            if let Ok(stats) = crate::cache::sweep_lru(root, max) {
                if opts.progress && stats.entries_removed > 0 {
                    eprintln!(
                        "cache sweep: evicted {} entries ({} bytes), {} bytes kept",
                        stats.entries_removed,
                        stats.bytes_removed,
                        stats.bytes_after()
                    );
                }
            }
        }
    }

    pub(crate) fn assemble_manifest(&self, parts: ManifestParts) -> RunManifest {
        let n = self.cells.len();
        let owned = n - parts.cells_skipped;
        let wall_secs = parts.started.elapsed().as_secs_f64();
        let events_total: u64 = parts.records.iter().map(|r| r.events).sum();
        let worker_busy_secs: f64 = parts.records.iter().map(|r| r.wall_ms).sum::<f64>() / 1e3;
        let mut walls: Vec<f64> = parts
            .records
            .iter()
            .filter(|r| !r.cached && r.status.succeeded() && r.attempts > 0)
            .map(|r| r.wall_ms)
            .collect();
        walls.sort_by(|a, b| a.total_cmp(b));
        let mut scope_annotations = parts.scope_annotations;
        // Canonical order: harvest order is completion order, which is
        // scheduling-dependent; sorting keeps manifests byte-comparable
        // across executors and worker counts.
        scope_annotations.sort_by(|a, b| a.label.cmp(&b.label).then(a.n.cmp(&b.n)));
        RunManifest {
            experiment: self.experiment.clone(),
            version: self.version.clone(),
            executor: parts.executor,
            shard: parts.shard,
            workers: parts.workers,
            total_cells: n,
            cache_hits: parts.cache_hits,
            cache_misses: owned - parts.cache_hits,
            cells_skipped: parts.cells_skipped,
            wall_secs,
            cells_per_sec: owned as f64 / wall_secs.max(1e-9),
            events_total,
            events_per_sec: events_total as f64 / wall_secs.max(1e-9),
            worker_busy_secs,
            utilization: worker_busy_secs / (wall_secs.max(1e-9) * parts.workers.max(1) as f64),
            wall_ms_p50: nearest_rank(&walls, 50.0),
            wall_ms_p99: nearest_rank(&walls, 99.0),
            cells_failed: parts.cells_failed,
            cell_retries: parts.cell_retries,
            cell_timeouts: parts.cell_timeouts,
            cache_quarantined: parts.cache_quarantined,
            // Recovery counters are stamped by the coordinator after the
            // merge; a freshly assembled single-process manifest has none.
            shard_restarts: 0,
            cells_reassigned: 0,
            lease_expiries: 0,
            results_digest: parts.results_digest,
            fingerprint: String::new(),
            annotations: Vec::new(),
            scope_annotations,
            prof: parts.prof,
            cells: parts.records,
        }
    }
}

/// Everything an executor hands to [`Campaign::assemble_manifest`].
pub(crate) struct ManifestParts {
    pub executor: String,
    pub shard: Option<ShardInfo>,
    pub workers: usize,
    pub cache_hits: usize,
    pub cells_skipped: usize,
    pub started: Instant,
    pub records: Vec<CellRecord>,
    pub cells_failed: usize,
    pub cell_retries: u64,
    pub cell_timeouts: u64,
    pub cache_quarantined: u64,
    pub results_digest: String,
    pub prof: simtrace::ProfSnapshot,
    pub scope_annotations: Vec<simtrace::ScopeAnnotation>,
}

/// Telemetry harvested from the worker's thread-locals after one cell
/// closure returns: compute time, simulator events, span profile, and
/// queued scope annotations.
pub(crate) struct CellTelemetry {
    pub wall_ms: f64,
    pub events: u64,
    pub prof: simtrace::ProfSnapshot,
    pub scopes: Vec<simtrace::ScopeAnnotation>,
}

/// Run one cell closure with the thread-local telemetry bracketed around
/// it: the event tally, span profiler, and scope-annotation queue are
/// reset before the closure and harvested after, so each record
/// attributes exactly what its own closure produced.
pub(crate) fn run_bracketed<T>(
    profile: bool,
    f: impl FnOnce() -> T,
) -> (std::thread::Result<T>, CellTelemetry) {
    let _ = simtrace::runtime::take_cell_events();
    let _ = simtrace::runtime::take_scope_annotations();
    let _ = simtrace::prof::take();
    if profile {
        simtrace::prof::set_enabled(true);
    }
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(f));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if profile {
        simtrace::prof::set_enabled(false);
    }
    (
        outcome,
        CellTelemetry {
            wall_ms,
            events: simtrace::runtime::take_cell_events(),
            prof: simtrace::prof::take(),
            scopes: simtrace::runtime::take_scope_annotations(),
        },
    )
}

/// Sanitize a cell label into a filename: anything outside
/// `[A-Za-z0-9._-]` becomes `-`.
pub(crate) fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Write `recorder`'s ring to `<dir>/<label>.jsonl` (oldest record
/// first), returning the path on success. Dump failures only warn — the
/// cell already failed, and losing the black box must not also lose the
/// campaign.
pub(crate) fn dump_flightrec(
    dir: &Path,
    label: &str,
    recorder: &simtrace::FlightRecorder,
) -> Option<String> {
    let path = dir.join(format!("{}.jsonl", sanitize_label(label)));
    let write =
        std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, recorder.to_jsonl()));
    match write {
        Ok(()) => Some(path.display().to_string()),
        Err(e) => {
            eprintln!("warning: flight-recorder dump failed for '{label}': {e}");
            None
        }
    }
}

/// Parse a byte-size string: plain bytes, or with a `K`/`M`/`G` suffix
/// (case-insensitive, powers of 1024).
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1u64 << 10),
        b'm' | b'M' => (&s[..s.len() - 1], 1u64 << 20),
        b'g' | b'G' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    digits.trim().parse::<u64>().ok()?.checked_mul(mult)
}

/// Extract the text of a panic payload. Callers holding the
/// `Box<dyn Any + Send>` from `catch_unwind` must pass `&*payload`:
/// passing `&payload` unsizes the *box itself* into `&dyn Any` (boxes are
/// `'static + Send` too), and every downcast then fails.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bytes_accepts_suffixes() {
        assert_eq!(parse_bytes("1024"), Some(1024));
        assert_eq!(parse_bytes("4K"), Some(4096));
        assert_eq!(parse_bytes("2m"), Some(2 << 20));
        assert_eq!(parse_bytes("1G"), Some(1 << 30));
        assert_eq!(parse_bytes(" 8 K "), Some(8192));
        assert_eq!(parse_bytes("nope"), None);
        assert_eq!(parse_bytes(""), None);
    }

    #[test]
    fn sanitize_label_keeps_safe_chars() {
        assert_eq!(sanitize_label("flap:cubic+suss:2"), "flap-cubic-suss-2");
        assert_eq!(sanitize_label("ok._-123"), "ok._-123");
    }

    fn env_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn apply_env_parses_every_knob() {
        let (opts, warnings) = RunnerOpts::default().apply_env(env_of(&[
            ("SUSS_WORKERS", "3"),
            ("SUSS_CACHE_DIR", "/tmp/cache"),
            ("SUSS_FORCE_COLD", "1"),
            ("SUSS_PROGRESS", "0"),
            ("SUSS_CACHE_MAX_BYTES", "2M"),
            ("SUSS_CELL_TIMEOUT_MS", "1500"),
            ("SUSS_STALL_TIMEOUT_MS", "0"),
            ("SUSS_CELL_RETRIES", "2"),
            ("SUSS_PROF", "1"),
            ("SUSS_FLIGHTREC_DIR", "/tmp/frec"),
            ("SUSS_EXECUTOR", "steal"),
            ("SUSS_SHARD_LEASE_MS", "2000"),
            ("SUSS_SHARD_RESTARTS", "3"),
            ("SUSS_CHAOS_KILL_SHARD", "1:5"),
        ]));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.cache_dir.as_deref(), Some(Path::new("/tmp/cache")));
        assert!(opts.force_cold);
        assert!(!opts.progress);
        assert_eq!(opts.cache_max_bytes, Some(2 << 20));
        assert_eq!(opts.cell_timeout, Some(Duration::from_millis(1500)));
        assert_eq!(opts.stall_timeout, None, "0 disables the watchdog");
        assert_eq!(opts.cell_retries, 2);
        assert!(opts.profile);
        assert_eq!(opts.flightrec_dir.as_deref(), Some(Path::new("/tmp/frec")));
        assert_eq!(opts.executor, ExecSpec::WorkStealing);
        assert!(!opts.shard_exit);
        assert_eq!(opts.shard_lease, Some(Duration::from_millis(2000)));
        assert_eq!(opts.shard_restarts, 3);
        assert_eq!(opts.chaos_kill_shard, Some((1, 5)));
    }

    #[test]
    fn apply_env_lease_zero_disables() {
        let base = RunnerOpts::default().with_shard_lease(Duration::from_secs(5));
        let (opts, warnings) = base.apply_env(env_of(&[("SUSS_SHARD_LEASE_MS", "0")]));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(opts.shard_lease, None, "0 must disable the lease");
    }

    #[test]
    fn apply_env_shard_coordinates_imply_process_exit() {
        let (opts, warnings) = RunnerOpts::default().apply_env(env_of(&[("SUSS_SHARD", "1/4")]));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(opts.executor, ExecSpec::Shard { index: 1, total: 4 });
        assert!(
            opts.shard_exit,
            "env-driven shards must exit after the shard manifest"
        );
    }

    #[test]
    fn apply_env_warns_and_keeps_prior_value_on_malformed_input() {
        let base = RunnerOpts::default()
            .with_workers(7)
            .with_cell_retries(4)
            .with_cache_max_bytes(1024);
        let (opts, warnings) = base.apply_env(env_of(&[
            ("SUSS_WORKERS", "many"),
            ("SUSS_CACHE_MAX_BYTES", "-5"),
            ("SUSS_CELL_TIMEOUT_MS", "soon"),
            ("SUSS_STALL_TIMEOUT_MS", "1e3"),
            ("SUSS_CELL_RETRIES", "2.5"),
            ("SUSS_EXECUTOR", "quantum"),
            ("SUSS_SHARD", "4/4"),
            ("SUSS_SHARD_LEASE_MS", "soonish"),
            ("SUSS_SHARD_RESTARTS", "-1"),
            ("SUSS_CHAOS_KILL_SHARD", "whenever"),
        ]));
        assert_eq!(warnings.len(), 10, "{warnings:?}");
        for w in &warnings {
            assert!(w.starts_with("ignoring SUSS_"), "{w}");
        }
        assert_eq!(opts.workers, 7, "malformed value must keep the prior one");
        assert_eq!(opts.cell_retries, 4);
        assert_eq!(opts.cache_max_bytes, Some(1024));
        assert_eq!(opts.cell_timeout, None);
        assert_eq!(opts.executor, ExecSpec::Pool);
        assert!(!opts.shard_exit);
        assert_eq!(opts.shard_lease, None);
        assert_eq!(opts.shard_restarts, 1, "default restart budget survives");
        assert_eq!(opts.chaos_kill_shard, None);
    }

    #[test]
    fn shard_coordinates_must_be_in_range() {
        assert_eq!(parse_shard("0/1"), Some((0, 1)));
        assert_eq!(parse_shard("3/4"), Some((3, 4)));
        assert_eq!(parse_shard(" 1 / 2 "), Some((1, 2)));
        assert_eq!(parse_shard("4/4"), None);
        assert_eq!(parse_shard("2"), None);
        assert_eq!(parse_shard("a/b"), None);
        assert_eq!(parse_shard("1/0"), None);
    }

    #[test]
    fn chaos_kill_spec_parses_index_and_cell_count() {
        assert_eq!(parse_kill_shard("1:3"), Some((1, 3)));
        assert_eq!(parse_kill_shard(" 0 : 12 "), Some((0, 12)));
        assert_eq!(parse_kill_shard("1"), None);
        assert_eq!(parse_kill_shard("a:3"), None);
        assert_eq!(parse_kill_shard("1:soon"), None);
    }

    #[test]
    fn serial_opts_resolve_one_worker() {
        let opts = RunnerOpts::serial();
        assert_eq!(opts.resolved_workers(), 1);
        let auto = RunnerOpts::default();
        assert!(auto.resolved_workers() >= 1);
        assert_eq!(auto.stem_for("fig17"), Path::new("results").join("fig17"));
        assert_eq!(
            auto.with_manifest_stem("/tmp/x/fig17").stem_for("fig17"),
            Path::new("/tmp/x/fig17")
        );
    }
}
