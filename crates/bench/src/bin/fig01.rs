//! Figure 1: slow-start under-utilization (CUBIC & BBR vs. the θ line).

use experiments::fig01::{run, Fig01Params};
use suss_bench::BenchCli;

fn main() {
    let o = BenchCli::parse("fig01");
    let p = if o.quick {
        Fig01Params::quick()
    } else {
        Fig01Params::paper()
    };
    let r = run(&p);
    o.emit(
        &format!(
            "Fig. 1 — delivered data vs time on {} (θ = {:.1} Mbps)",
            r.scenario.id(),
            r.theta * 8.0 / 1e6
        ),
        &r.to_table(),
    );
    println!(
        "early utilization (first quarter of horizon): {:.0}% of the θ line",
        r.early_utilization(0.25) * 100.0
    );
    let pts = |s: &simstats::StepSeries| -> Vec<(f64, f64)> {
        s.resample(p.horizon, 64, 0.0)
            .into_iter()
            .map(|(t, v)| (t.as_secs_f64(), v / 1e6))
            .collect()
    };
    let cubic = pts(&r.cubic);
    let bbr = pts(&r.bbr);
    let theta: Vec<(f64, f64)> = (0..=64)
        .map(|k| {
            let t = p.horizon.as_secs_f64() * k as f64 / 64.0;
            (t, r.theta * t / 1e6)
        })
        .collect();
    println!();
    print!(
        "{}",
        simstats::ascii_chart(
            &[("cubic", &cubic), ("bbr", &bbr), ("theta", &theta)],
            72,
            16,
            "t(s)",
            "delivered(MB)"
        )
    );
}
