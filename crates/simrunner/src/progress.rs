//! Campaign progress reporting on stderr.
//!
//! One carriage-returned status line while the run is in flight, then a
//! final summary line. Kept on stderr so stdout stays a clean artifact
//! stream for the figure binaries.

use std::io::Write as _;
use std::time::Instant;

/// Streams `done/total`, throughput, and ETA to stderr.
pub struct Progress {
    experiment: String,
    total: usize,
    done: usize,
    cached: usize,
    started: Instant,
    enabled: bool,
}

impl Progress {
    /// Create a reporter for `total` cells; silent unless `enabled`.
    pub fn new(experiment: &str, total: usize, enabled: bool) -> Self {
        Progress {
            experiment: experiment.to_string(),
            total,
            done: 0,
            cached: 0,
            started: Instant::now(),
            enabled,
        }
    }

    /// Record one finished cell (`from_cache` marks a hit).
    pub fn tick(&mut self, from_cache: bool) {
        self.done += 1;
        if from_cache {
            self.cached += 1;
        }
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let rate = self.done as f64 / elapsed;
        let remaining = self.total.saturating_sub(self.done);
        let eta = remaining as f64 / rate.max(1e-9);
        eprint!(
            "\r{}: {}/{} cells ({} cached) | {:.1} cells/s | ETA {:.0}s   ",
            self.experiment, self.done, self.total, self.cached, rate, eta
        );
        let _ = std::io::stderr().flush();
    }

    /// Finish the line with a run summary.
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        eprintln!(
            "\r{}: {} cells in {:.1}s ({} cached, {:.1} cells/s)        ",
            self.experiment,
            self.done,
            elapsed,
            self.cached,
            self.done as f64 / elapsed.max(1e-9)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_without_printing_when_disabled() {
        let mut p = Progress::new("exp", 3, false);
        p.tick(true);
        p.tick(false);
        p.finish();
        assert_eq!(p.done, 2);
        assert_eq!(p.cached, 1);
    }
}
