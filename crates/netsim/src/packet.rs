//! Packets and identifiers.
//!
//! The simulator moves opaque [`Packet`]s between nodes. Higher layers (the
//! TCP model in `tcp-sim`) attach their protocol headers as a type-erased
//! payload and downcast on receipt — the engine itself is protocol-agnostic,
//! mirroring how an IP network treats transport payloads.

use std::any::{Any, TypeId};
use std::fmt;

/// Identifies a node (agent) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of this node in the simulation's agent table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies one *direction* of a link (a half-link with its own queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// Raw index of this half-link in the simulation's link table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Identifies an end-to-end flow (one TCP connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A packet in flight.
///
/// `size` is the on-wire size in bytes and is what drives serialization
/// delay and queue occupancy. The `payload` carries protocol state for the
/// endpoints and does not contribute to `size` (headers must be included in
/// `size` by the sender).
pub struct Packet {
    /// Globally unique id, assigned at send time.
    pub id: u64,
    /// Flow this packet belongs to (0 for non-flow traffic).
    pub flow: FlowId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node; routers forward based on this.
    pub dst: NodeId,
    /// On-wire size in bytes, including all headers.
    pub size: u32,
    /// Type-erased protocol payload (e.g. a TCP segment header).
    pub payload: Option<Box<dyn Any>>,
    /// Clone function for the payload, captured where the concrete type is
    /// known. Lets fault injection duplicate type-erased packets.
    pub(crate) cloner: Option<PayloadCloner>,
}

/// Clone function for a type-erased payload; monomorphized where the
/// concrete type is known, stored as a plain `fn` pointer.
pub(crate) type PayloadCloner = fn(&dyn Any) -> Box<dyn Any>;

/// Monomorphized payload clone function; stored as a plain `fn` pointer on
/// packets and [`PayloadHandle`]s.
fn clone_payload<T: Any + Clone>(p: &dyn Any) -> Box<dyn Any> {
    Box::new(
        p.downcast_ref::<T>()
            .expect("payload cloner type mismatch")
            .clone(),
    )
}

/// A boxed payload paired with its clone function.
///
/// Produced by `Ctx::alloc_payload` (possibly reusing a pooled box) and
/// consumed by [`Packet::with_boxed_payload`]; the attached cloner is what
/// lets a link fault plan duplicate packets whose payload type has been
/// erased.
pub struct PayloadHandle {
    pub(crate) boxed: Box<dyn Any>,
    pub(crate) cloner: fn(&dyn Any) -> Box<dyn Any>,
}

impl PayloadHandle {
    /// Wrap an already-boxed payload of concrete type `T`.
    pub fn of<T: Any + Clone>(boxed: Box<dyn Any>) -> Self {
        debug_assert!(boxed.is::<T>(), "boxed payload is not a T");
        PayloadHandle {
            boxed,
            cloner: clone_payload::<T>,
        }
    }
}

impl Packet {
    /// Construct a packet with no payload (e.g. background traffic filler).
    pub fn opaque(flow: FlowId, src: NodeId, dst: NodeId, size: u32) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            size,
            payload: None,
            cloner: None,
        }
    }

    /// Construct a packet carrying a typed payload.
    pub fn with_payload<T: Any + Clone>(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        size: u32,
        payload: T,
    ) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            size,
            payload: Some(Box::new(payload)),
            cloner: Some(clone_payload::<T>),
        }
    }

    /// Construct a packet from an already-boxed payload (see
    /// `Ctx::alloc_payload` for the allocation-free path).
    pub fn with_boxed_payload(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        size: u32,
        payload: PayloadHandle,
    ) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            size,
            payload: Some(payload.boxed),
            cloner: Some(payload.cloner),
        }
    }

    /// Clone this packet for fault-injected duplication.
    ///
    /// Returns `None` when the payload cannot be cloned (a payload attached
    /// without a cloner), in which case the duplication is skipped.
    pub(crate) fn clone_for_duplicate(&self) -> Option<Packet> {
        let payload = match (&self.payload, self.cloner) {
            (None, _) => None,
            (Some(b), Some(c)) => Some(c(b.as_ref())),
            (Some(_), None) => return None,
        };
        Some(Packet {
            id: self.id,
            flow: self.flow,
            src: self.src,
            dst: self.dst,
            size: self.size,
            payload,
            cloner: self.cloner,
        })
    }

    /// Borrow the payload downcast to `T`, if present and of that type.
    pub fn payload_ref<T: Any>(&self) -> Option<&T> {
        self.payload.as_deref().and_then(|p| p.downcast_ref::<T>())
    }

    /// Take the payload downcast to `T`.
    ///
    /// Returns `Err(self)` unchanged if the payload is absent or of a
    /// different type, so mis-delivered packets can still be inspected.
    pub fn take_payload<T: Any>(mut self) -> Result<(T, PacketMeta), Packet> {
        match self.payload.take() {
            Some(b) => match b.downcast::<T>() {
                Ok(t) => Ok((
                    *t,
                    PacketMeta {
                        id: self.id,
                        flow: self.flow,
                        src: self.src,
                        dst: self.dst,
                        size: self.size,
                    },
                )),
                Err(b) => {
                    self.payload = Some(b);
                    Err(self)
                }
            },
            None => Err(self),
        }
    }

    /// Take the payload downcast to `T`, returning its box to `pool` for
    /// reuse instead of freeing it. The allocation-free counterpart of
    /// [`Packet::take_payload`]; endpoints reach it through
    /// `Ctx::take_payload`.
    pub fn take_payload_with<T: Any + Default>(
        mut self,
        pool: &mut PayloadPool,
    ) -> Result<(T, PacketMeta), Packet> {
        match self.payload.take() {
            Some(b) => match b.downcast::<T>() {
                Ok(mut bt) => {
                    let value = std::mem::take(&mut *bt);
                    let meta = PacketMeta {
                        id: self.id,
                        flow: self.flow,
                        src: self.src,
                        dst: self.dst,
                        size: self.size,
                    };
                    pool.recycle(bt);
                    Ok((value, meta))
                }
                Err(b) => {
                    self.payload = Some(b);
                    Err(self)
                }
            },
            None => Err(self),
        }
    }
}

/// Per-type shelves of recycled payload boxes.
///
/// Every data segment and ACK in a transfer is heap-allocated at the sender
/// and freed at the receiver; at millions of events per run that `Box`
/// churn dominates the packet path. The pool keeps consumed boxes on a
/// shelf keyed by `TypeId` and refills them in place on the next
/// allocation, so a steady-state flow reuses the same handful of boxes.
///
/// Reuse is value-transparent — a pooled box is overwritten with the new
/// payload before it is handed out — so pooling cannot affect simulation
/// results, only allocator traffic.
pub struct PayloadPool {
    /// `(payload type, recycled boxes)`; linear scan — real workloads carry
    /// two payload types (data + ACK).
    shelves: Vec<(TypeId, Vec<Box<dyn Any>>)>,
    enabled: bool,
}

/// Recycled boxes kept per payload type; beyond this, recycle frees.
const SHELF_CAP: usize = 1024;

impl PayloadPool {
    /// Create a pool; a disabled pool always allocates and never retains
    /// (the seed-baseline configuration for benchmarking).
    pub fn new(enabled: bool) -> Self {
        PayloadPool {
            shelves: Vec::new(),
            enabled,
        }
    }

    /// Box `value`, reusing a recycled allocation when one is shelved.
    /// Returns the box and whether it was a pool hit.
    pub fn boxed<T: Any>(&mut self, value: T) -> (Box<dyn Any>, bool) {
        if self.enabled {
            let key = TypeId::of::<T>();
            if let Some((_, shelf)) = self.shelves.iter_mut().find(|(t, _)| *t == key) {
                if let Some(b) = shelf.pop() {
                    let mut bt = b.downcast::<T>().expect("shelf keyed by TypeId");
                    *bt = value;
                    return (bt, true);
                }
            }
        }
        (Box::new(value), false)
    }

    /// Return a consumed payload box to its type's shelf.
    pub fn recycle(&mut self, b: Box<dyn Any>) {
        if !self.enabled {
            return;
        }
        let key = (*b).type_id();
        match self.shelves.iter_mut().find(|(t, _)| *t == key) {
            Some((_, shelf)) => {
                if shelf.len() < SHELF_CAP {
                    shelf.push(b);
                }
            }
            None => self.shelves.push((key, vec![b])),
        }
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("id", &self.id)
            .field("flow", &self.flow)
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("size", &self.size)
            .field("payload", &self.payload.as_ref().map(|_| "…"))
            .finish()
    }
}

/// Header fields of a packet, detached from its payload.
#[derive(Debug, Clone, Copy)]
pub struct PacketMeta {
    /// Globally unique packet id.
    pub id: u64,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// On-wire size in bytes.
    pub size: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes() -> (NodeId, NodeId) {
        (NodeId(1), NodeId(2))
    }

    #[test]
    fn payload_roundtrip() {
        let (a, b) = nodes();
        let p = Packet::with_payload(FlowId(3), a, b, 1500, 42u64);
        assert_eq!(p.payload_ref::<u64>(), Some(&42));
        let (v, meta) = p.take_payload::<u64>().unwrap();
        assert_eq!(v, 42);
        assert_eq!(meta.flow, FlowId(3));
        assert_eq!(meta.size, 1500);
    }

    #[test]
    fn wrong_type_downcast_returns_packet() {
        let (a, b) = nodes();
        let p = Packet::with_payload(FlowId(1), a, b, 100, 42u64);
        let p = p.take_payload::<String>().unwrap_err();
        // Payload must survive the failed downcast.
        assert_eq!(p.payload_ref::<u64>(), Some(&42));
    }

    #[test]
    fn opaque_has_no_payload() {
        let (a, b) = nodes();
        let p = Packet::opaque(FlowId(0), a, b, 64);
        assert!(p.payload_ref::<u64>().is_none());
        assert!(p.take_payload::<u64>().is_err());
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(LinkId(7).to_string(), "l7");
        assert_eq!(FlowId(9).to_string(), "f9");
    }

    #[test]
    fn pool_reuses_recycled_box() {
        let (a, b) = nodes();
        let mut pool = PayloadPool::new(true);
        let (boxed, hit) = pool.boxed(7u64);
        assert!(!hit, "empty pool must miss");
        let first = boxed.downcast_ref::<u64>().unwrap() as *const u64 as usize;
        let p = Packet::with_boxed_payload(FlowId(1), a, b, 100, PayloadHandle::of::<u64>(boxed));
        let (v, _meta) = p.take_payload_with::<u64>(&mut pool).unwrap();
        assert_eq!(v, 7);
        // The freed box is shelved; the next same-type alloc reuses it.
        let (boxed, hit) = pool.boxed(9u64);
        assert!(hit, "recycled box must be reused");
        let again = boxed.downcast_ref::<u64>().unwrap() as *const u64 as usize;
        assert_eq!(again, first);
        assert_eq!(boxed.downcast_ref::<u64>(), Some(&9));
    }

    #[test]
    fn pool_shelves_are_per_type() {
        let mut pool = PayloadPool::new(true);
        let (b1, _) = pool.boxed(1u64);
        pool.recycle(b1);
        // A different payload type cannot hit the u64 shelf.
        let (_, hit) = pool.boxed(String::from("x"));
        assert!(!hit);
        let (b2, hit) = pool.boxed(2u64);
        assert!(hit);
        assert_eq!(b2.downcast_ref::<u64>(), Some(&2));
    }

    #[test]
    fn disabled_pool_never_hits() {
        let mut pool = PayloadPool::new(false);
        let (b, hit) = pool.boxed(1u64);
        assert!(!hit);
        pool.recycle(b);
        let (_, hit) = pool.boxed(2u64);
        assert!(!hit, "disabled pool must not retain boxes");
    }

    #[test]
    fn duplicate_clones_typed_payloads() {
        let (a, b) = nodes();
        let p = Packet::with_payload(FlowId(2), a, b, 900, 11u64);
        let d = p.clone_for_duplicate().expect("typed payload is clonable");
        assert_eq!(d.payload_ref::<u64>(), Some(&11));
        assert_eq!((d.flow, d.size), (p.flow, p.size));
        // The clone is a distinct allocation.
        let orig = p.payload_ref::<u64>().unwrap() as *const u64;
        let twin = d.payload_ref::<u64>().unwrap() as *const u64;
        assert_ne!(orig, twin);
        // Opaque packets duplicate trivially.
        assert!(Packet::opaque(FlowId(0), a, b, 64)
            .clone_for_duplicate()
            .is_some());
    }

    #[test]
    fn take_payload_with_wrong_type_keeps_packet() {
        let (a, b) = nodes();
        let mut pool = PayloadPool::new(true);
        let p = Packet::with_payload(FlowId(1), a, b, 100, 42u64);
        let p = p.take_payload_with::<String>(&mut pool).unwrap_err();
        assert_eq!(p.payload_ref::<u64>(), Some(&42));
    }
}
