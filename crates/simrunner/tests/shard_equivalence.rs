//! Shard-equivalence regression suite: splitting a campaign into N shard
//! processes against a shared cache and merging their manifests must
//! produce results and a manifest fingerprint byte-identical to a
//! single-process run — cold and warm, for any shard count — and a dead,
//! corrupt, or mismatched shard must be recovered at merge time by
//! reassigning its cells through the cache, never by voiding the run.

use simrunner::{
    read_heartbeat, shard_heartbeat_path, shard_manifest_path, Campaign, CampaignReport, ExecSpec,
    Executor, Heartbeat, LeaseClock, RunManifest, RunnerOpts, ShardInfo, ShardWorker,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A seed- and parameter-sensitive stand-in simulation with uneven cost.
fn fake_sim(seed: u64, rounds: u64) -> f64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut acc = 0u64;
    for _ in 0..rounds {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x);
    }
    (acc >> 11) as f64 / (1u64 << 53) as f64
}

fn cell_value(cell: &simrunner::Cell) -> f64 {
    fake_sim(cell.seed, 500 + (cell.index as u64 % 7) * 900)
}

/// The paper-style 28-cell matrix: 7 scenarios × 4 seeds.
fn campaign() -> Campaign {
    let mut c = Campaign::new("shard-eq-it", "v1");
    for scenario in ["a", "b", "c", "d", "e", "f", "g"] {
        for seed in 0..4u64 {
            c.cell(
                format!("{scenario}/seed{seed}"),
                format!("scenario={scenario} seed={seed}"),
                seed,
            );
        }
    }
    c
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn render(results: &[Option<f64>]) -> String {
    results
        .iter()
        .enumerate()
        .map(|(i, v)| format!("{i} {:.17e}\n", v.expect("cell result")))
        .collect()
}

fn coordinator_opts(dir: &PathBuf, shards: usize) -> RunnerOpts {
    RunnerOpts::serial()
        .with_cache(dir.join("cache"))
        .with_manifest_stem(dir.join("run"))
        .with_executor(ExecSpec::Coordinator { shards, argv: None })
}

fn run_sharded(c: &Campaign, dir: &PathBuf, shards: usize) -> CampaignReport<f64> {
    c.run(&coordinator_opts(dir, shards).executor(), cell_value)
}

#[test]
fn sharded_runs_match_single_process_cold_and_warm() {
    let single_dir = tempdir("simrunner-shardeq-single");
    let c = campaign();
    let single_opts = RunnerOpts::serial().with_cache(single_dir.join("cache"));
    let single = c.run(&single_opts.clone().executor(), cell_value);
    assert_eq!(single.manifest.cache_hits, 0);
    assert!(!single.manifest.fingerprint.is_empty());

    for shards in [2usize, 4] {
        let dir = tempdir(&format!("simrunner-shardeq-{shards}"));
        // Cold: every cell computed by exactly one shard.
        let cold = run_sharded(&c, &dir, shards);
        assert_eq!(
            cold.manifest.executor,
            format!("coordinator({shards} shards)")
        );
        assert_eq!(cold.manifest.cache_hits, 0, "{shards} shards cold");
        assert_eq!(cold.manifest.cache_misses, c.len());
        assert_eq!(cold.manifest.cells_skipped, 0, "merge covers every cell");
        assert_eq!(
            render(&cold.results),
            render(&single.results),
            "{shards}-shard cold run diverged from single-process"
        );
        assert_eq!(
            cold.manifest.results_digest, single.manifest.results_digest,
            "{shards}-shard results digest diverged"
        );
        assert_eq!(
            cold.manifest.fingerprint, single.manifest.fingerprint,
            "{shards}-shard manifest fingerprint diverged from single-process"
        );

        // Warm: every shard serves its slice from the shared cache.
        let warm = run_sharded(&c, &dir, shards);
        assert_eq!(warm.manifest.cache_hits, c.len(), "{shards} shards warm");
        assert_eq!(warm.manifest.fingerprint, single.manifest.fingerprint);
        assert_eq!(render(&warm.results), render(&single.results));

        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&single_dir).ok();
}

#[test]
fn shard_manifests_carry_ownership_and_merge_covers_everything() {
    let dir = tempdir("simrunner-shardeq-ownership");
    let c = campaign();
    let out = run_sharded(&c, &dir, 2);
    assert!(out.all_ok());

    // The per-shard manifests stay on disk next to the merged run and
    // partition the campaign exactly.
    let stem = dir.join("run");
    for k in 0..2usize {
        let m = RunManifest::read(&shard_manifest_path(&stem, k, 2)).expect("shard manifest");
        assert_eq!(m.shard, Some(ShardInfo { index: k, total: 2 }));
        assert_eq!(m.total_cells, c.len());
        let owned = c.len() / 2;
        assert_eq!(m.cells_skipped, c.len() - owned);
        for rec in &m.cells {
            let owns = rec.index % 2 == k;
            assert_eq!(
                rec.status.succeeded(),
                owns,
                "shard {k} cell {}: status {:?}",
                rec.index,
                rec.status
            );
        }
    }
    // Coordination scratch (shard plan, heartbeats) is cleaned up after
    // a fully-successful merge; the shard manifests above are artifacts
    // and stay.
    assert!(
        !dir.join("run.shardplan.json").exists(),
        "shard plan must be removed on success"
    );
    for k in 0..2usize {
        let hb = shard_heartbeat_path(&stem, k, 2);
        assert!(
            !hb.exists(),
            "heartbeat {} must be removed on success",
            hb.display()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_shard_is_reassigned_at_merge_time() {
    let dir = tempdir("simrunner-shardeq-resume");
    let c = campaign();
    let opts = coordinator_opts(&dir, 2);

    // Phase 1: only shard 0 runs (the "other machine died" scenario) —
    // its results are in the shared cache, its manifest on disk.
    let worker = ShardWorker {
        opts: opts.clone(),
        shard: ShardInfo { index: 0, total: 2 },
        exit: false,
    };
    let half = worker.execute(&c, cell_value);
    let owned = c.len() / 2;
    assert_eq!(half.manifest.cache_misses, owned);

    // A merge over the partial state reassigns the missing shard's cells
    // inline instead of recording them dead: the merged run is complete,
    // with the recovery visible in the counters.
    let merge_opts = opts
        .clone()
        .with_executor(ExecSpec::MergeShards { shards: 2 });
    let recovered = c.run(&merge_opts.executor(), cell_value);
    assert!(recovered.all_ok(), "merge must absorb the dead shard");
    assert_eq!(
        recovered.manifest.cells_reassigned,
        (c.len() - owned) as u64,
        "every orphaned cell recomputes inline"
    );
    assert_eq!(recovered.manifest.cells_failed, 0);

    // The recovery rewrote shard 1's manifest, so a later merge (or an
    // external driver) sees a complete shard set on disk.
    let stem = dir.join("run");
    let m1 = RunManifest::read(&shard_manifest_path(&stem, 1, 2)).expect("recovered manifest");
    assert_eq!(m1.shard, Some(ShardInfo { index: 1, total: 2 }));

    // And the recovered run is indistinguishable from a never-killed one.
    let fresh_dir = tempdir("simrunner-shardeq-resume-fresh");
    let fresh = run_sharded(&c, &fresh_dir, 2);
    assert_eq!(recovered.manifest.fingerprint, fresh.manifest.fingerprint);
    assert_eq!(
        recovered.manifest.results_digest,
        fresh.manifest.results_digest
    );
    assert_eq!(render(&recovered.results), render(&fresh.results));
    assert_eq!(fresh.manifest.cells_reassigned, 0);

    // Phase 2: re-running the full coordinator over the now-warm cache
    // is a pure resume — every cell is a hit, nothing is reassigned.
    let resumed = run_sharded(&c, &dir, 2);
    assert!(resumed.all_ok());
    assert_eq!(resumed.manifest.cache_hits, c.len());
    assert_eq!(resumed.manifest.cells_reassigned, 0);
    assert_eq!(resumed.manifest.fingerprint, fresh.manifest.fingerprint);
    std::fs::remove_dir_all(&fresh_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_shard_manifest_is_quarantined_and_reassigned() {
    let dir = tempdir("simrunner-shardeq-corrupt");
    let c = campaign();
    let healthy = run_sharded(&c, &dir, 2);
    let stem = dir.join("run");

    // Truncated JSON where shard 1's manifest should be.
    let path = shard_manifest_path(&stem, 1, 2);
    std::fs::write(&path, "{\"experiment\":\"shard-eq-it\",\"cells\":[tru").unwrap();

    let merge_opts = coordinator_opts(&dir, 2).with_executor(ExecSpec::MergeShards { shards: 2 });
    let merged = c.run(&merge_opts.executor(), cell_value);
    assert!(
        merged.all_ok(),
        "corrupt shard manifest must not sink the merge"
    );
    assert_eq!(merged.manifest.fingerprint, healthy.manifest.fingerprint);
    // Warm cache: reassignment found every cell cached, so nothing
    // actually recomputed.
    assert_eq!(merged.manifest.cells_reassigned, 0);

    // The hostile file is preserved for forensics, like cache corruption.
    let mut q = path.clone().into_os_string();
    q.push(".quarantine");
    assert!(
        PathBuf::from(&q).exists(),
        "corrupt shard manifest must be quarantined, not deleted"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_campaign_version_shard_is_quarantined_and_reassigned() {
    let dir = tempdir("simrunner-shardeq-version");
    let c = campaign();
    let healthy = run_sharded(&c, &dir, 2);
    let stem = dir.join("run");

    // Shard 0's slot holds a manifest from a different CAMPAIGN_VERSION
    // (an external driver raced an old binary, say).
    let path = shard_manifest_path(&stem, 0, 2);
    let mut stale = RunManifest::read(&path).expect("healthy shard manifest");
    stale.version = "v0-stale".to_string();
    stale.write(&path).expect("rewrite stale manifest");

    let merge_opts = coordinator_opts(&dir, 2).with_executor(ExecSpec::MergeShards { shards: 2 });
    let merged = c.run(&merge_opts.executor(), cell_value);
    assert!(merged.all_ok());
    assert_eq!(merged.manifest.fingerprint, healthy.manifest.fingerprint);

    let mut q = path.clone().into_os_string();
    q.push(".quarantine");
    assert!(
        PathBuf::from(&q).exists(),
        "version-mismatched shard manifest must be quarantined"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lease_never_expires_a_healthy_but_slow_shard() {
    let dir = tempdir("simrunner-shardeq-lease");
    let stem = dir.join("run");
    let path = shard_heartbeat_path(&stem, 0, 2);
    let mut hb = Heartbeat::new(path.clone());

    // A lease much shorter than the shard's total runtime, but longer
    // than its inter-beat gap: slow-but-advancing must be spared.
    let lease = Duration::from_millis(250);
    let mut clock = LeaseClock::new(Some(lease), Instant::now());
    let started = Instant::now();
    let mut epoch = 0u64;
    while started.elapsed() < Duration::from_millis(900) {
        epoch += 1;
        hb.beat(epoch);
        let seen = read_heartbeat(&path).map(|h| h.epoch);
        assert!(
            !clock.observe(seen, Instant::now()),
            "lease expired on a shard whose epoch was still advancing"
        );
        std::thread::sleep(Duration::from_millis(120));
    }

    // Now freeze the epoch (livelock / SIGSTOP): the same clock must
    // expire once the frozen observation outlives the lease.
    let frozen = read_heartbeat(&path).map(|h| h.epoch);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut expired = false;
    while Instant::now() < deadline {
        if clock.observe(frozen, Instant::now()) {
            expired = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(expired, "a frozen epoch must expire the lease");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_is_order_insensitive_across_shard_counts() {
    // merge_shards itself is commutative (unit-tested); here: the
    // end-to-end fingerprint is invariant across 1, 2, and 4 shards.
    let c = campaign();
    let mut prints = Vec::new();
    for shards in [1usize, 2, 4] {
        let dir = tempdir(&format!("simrunner-shardeq-orderins-{shards}"));
        let out = run_sharded(&c, &dir, shards);
        prints.push(out.manifest.fingerprint.clone());
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(prints[0], prints[1]);
    assert_eq!(prints[1], prints[2]);
}
