//! # simrunner — parallel experiment-campaign orchestration
//!
//! Every evaluation artifact in the paper is a grid — scenarios × flow
//! sizes × congestion controllers × seeds — and each grid cell is one
//! deterministic, independent simulation. This crate owns running such
//! grids fast:
//!
//! * [`Campaign`] expands an experiment into [`Cell`]s — one simulation
//!   each, identified by a label, a canonical parameter string, and a
//!   seed;
//! * [`Campaign::run`] hands the campaign to a pluggable [`Executor`]
//!   ([`exec`]). Three engines ship: the deterministic token-tracked
//!   thread pool ([`PoolExecutor`], the default — panic isolation,
//!   bounded retries, wall-clock and progress-stall watchdogs,
//!   flight-recorder crash dumps), a work-stealing local executor
//!   ([`WorkStealingExecutor`], same watchdogs, detached workers), and
//!   the sharded path
//!   ([`ShardWorker`] / [`ShardCoordinator`] / [`ShardMerge`]) that
//!   splits a campaign across processes sharing one cache and merges
//!   the shard manifests back into a single [`RunManifest`]. The
//!   coordinator is self-healing: shard children write heartbeat files
//!   ([`Heartbeat`]) monitored under a stall-aware lease
//!   ([`LeaseClock`]), a dead shard is restarted with bounded backoff,
//!   and whatever still has no usable manifest at merge time has its
//!   remaining cells reassigned inline through the warm shared cache.
//!   All engines commit results by cell index, so the aggregated output is
//!   **byte-identical regardless of engine, worker count, scheduling
//!   order, or shard count** — the core invariant, enforced by
//!   regression tests;
//! * failures follow [`FailurePolicy`]: raise on first terminal failure
//!   (the default) or record — the campaign completes, failed cells
//!   come back as `None`, and their [`CellStatus`] and terminal error
//!   land in the manifest. Failures are never cached, so a re-run
//!   against the warm cache re-executes exactly the failed cells;
//! * results are memoized in a content-addressed cache ([`cache`]) keyed
//!   by a stable hash of (experiment id, version tag, cell params, seed).
//!   The key is shard-independent, which is what lets N shard processes
//!   share one cache dir and the coordinator reassemble the full result
//!   set afterwards;
//! * every run produces a serde-derived [`RunManifest`] (workers, wall
//!   time, cache hits/misses, per-cell timings, a results digest and a
//!   content fingerprint) that the figure binaries write next to their
//!   `results/*.txt` artifacts;
//! * progress (cells done / total, cells/sec, ETA) streams to stderr
//!   ([`progress`]).
//!
//! ## Example
//!
//! ```
//! use simrunner::{Campaign, RunnerOpts};
//!
//! let mut c = Campaign::new("demo", "v1");
//! for seed in 0..8 {
//!     c.cell(format!("cell-{seed}"), format!("x={seed}"), seed);
//! }
//! let out = c.run(&RunnerOpts::default().executor(), |cell| cell.seed as f64 * 2.0);
//! assert_eq!(out.results[3], Some(6.0));
//! assert_eq!(out.manifest.total_cells, 8);
//! assert_eq!(out.expect_all()[3], 6.0);
//! ```
//!
//! ## Distributed campaigns
//!
//! ```no_run
//! use simrunner::{Campaign, ExecSpec, RunnerOpts};
//!
//! let mut c = Campaign::new("demo", "v1");
//! for seed in 0..28 {
//!     c.cell(format!("cell-{seed}"), format!("x={seed}"), seed);
//! }
//! // Split into 2 shards against a shared cache; in-process here, or
//! // pass `argv: Some(...)` to re-exec the current binary per shard
//! // (`SUSS_SHARD=k/N` in each child selects its slice).
//! let opts = RunnerOpts::default()
//!     .with_cache("/tmp/suss-cache")
//!     .with_executor(ExecSpec::Coordinator { shards: 2, argv: None });
//! let out = c.run(&opts.executor(), |cell| cell.seed as f64);
//! assert_eq!(out.manifest.total_cells, 28);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod campaign;
pub mod exec;
pub mod manifest;
pub mod pool;
pub mod progress;

pub use cache::{sweep_lru, Cache, CellIdentity, SweepStats};
pub use campaign::{
    parse_bytes, Campaign, CampaignReport, Cell, ExecSpec, FailurePolicy, RunnerOpts,
};
pub use exec::{
    BuiltExecutor, Executor, LeaseClock, PoolExecutor, ShardCoordinator, ShardMerge, ShardWorker,
    WorkStealingExecutor, SHARD_FAILED_EXIT,
};
pub use manifest::{
    shard_heartbeat_path, shard_manifest_path, CellRecord, CellStatus, FctAnnotation, RunManifest,
    ShardInfo,
};
pub use progress::{read_heartbeat, Heartbeat, HeartbeatRecord};

/// FNV-1a 64-bit hash over a byte string — the stable content hash behind
/// cache keys. Stable across platforms, processes, and releases (never
/// replace with `DefaultHasher`, whose output is randomized per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Pinned values: changing the hash silently invalidates every
        // cache on disk, so make that an explicit decision.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
