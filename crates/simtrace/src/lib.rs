//! # simtrace — unified structured telemetry for the SUSS reproduction
//!
//! Every layer of the stack (the discrete-event simulator, the transport,
//! the SUSS state machine, and the campaign runner) reports into one small
//! observability substrate:
//!
//! * [`Registry`] — a counter/gauge registry. Handles are `Rc<Cell<u64>>`
//!   behind typed wrappers ([`Counter`], [`Gauge`]), so incrementing is a
//!   single unsynchronized store: lock-free when serial. Parallel campaigns
//!   shard naturally — each simulation owns its own registry, and
//!   [`CounterSnapshot`]s merge additively (gauges merge by max), so totals
//!   are identical at any worker count.
//! * [`TraceRecord`] + [`EventSink`] — a common timestamped event schema
//!   with JSONL ([`JsonlSink`]) and CSV ([`CsvSink`]) exporters. Producers
//!   (`ConnTrace`, `Capture`) convert their native samples/events into
//!   records; exporting is opt-in, so the hot path pays nothing when
//!   tracing is disabled.
//! * [`query`] — parse a JSONL trace back and answer the recurring
//!   questions: a flow's cwnd timeseries, events in a time window, counter
//!   totals, diffs between two runs. The `suss-trace` CLI bin is a thin
//!   wrapper over this module.
//! * [`runtime`] — thread-local per-cell accounting (sim events executed,
//!   scope-summary annotations) that the campaign runner samples around
//!   each cell to report events/sec and worker utilization in run
//!   manifests.
//! * [`prof`] — a span-based wall-time profiler: scoped guards in the
//!   simulator/transport hot paths attribute every nanosecond of an
//!   enabled window to a named stack path; per-cell snapshots merge into
//!   the run manifest and render via `suss-trace profile`.
//! * [`flightrec`] — a fixed-size ring of recent [`TraceRecord`]s that
//!   the resilient campaign runner dumps to disk when a cell panics or
//!   hangs, so failures come with packet-level context.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flightrec;
pub mod metrics;
pub mod prof;
pub mod query;
pub mod record;
pub mod runtime;
pub mod sink;

pub use flightrec::FlightRecorder;
pub use metrics::{Counter, CounterSnapshot, Gauge, MetricValue, Registry};
pub use prof::{ProfSnapshot, ProfSpan};
pub use record::{kind, TraceRecord};
pub use runtime::ScopeAnnotation;
pub use sink::{export_counters, CsvSink, EventSink, JsonlSink, VecSink};

/// Canonical metric names. Producers register by these constants so the
/// catalogue stays greppable and `suss-trace diff` output lines up across
/// runs.
pub mod names {
    /// Simulator events dispatched (one per timer/packet delivery).
    pub const NET_EVENTS: &str = "net.events_processed";
    /// Simulator events scheduled (pushes into the event queue).
    pub const NET_EVENTS_SCHEDULED: &str = "net.events_scheduled";
    /// Far timers cascaded from the scheduler's overflow heap into the
    /// timer wheel (0 under the binary-heap scheduler).
    pub const NET_SCHED_CASCADES: &str = "net.sched_cascades";
    /// Same-tick same-link arrivals coalesced into an earlier dispatch's
    /// batch (0 under `EngineConfig::baseline()`).
    pub const NET_SCHED_BATCHED: &str = "net.sched_batched";
    /// Events addressed to a retired agent slot (stale timers from a
    /// torn-down flow, packets in flight at teardown). Dropped on arrival.
    pub const NET_ORPHAN_EVENTS: &str = "net.orphan_events";
    /// Payload allocations served from the recycled-buffer pool.
    pub const NET_POOL_HITS: &str = "net.pool_hits";
    /// Payload allocations that fell through to the global allocator.
    pub const NET_POOL_MISSES: &str = "net.pool_misses";
    /// Packets dropped by a full link queue.
    pub const NET_QUEUE_DROPS: &str = "net.queue_drops";
    /// Packets dropped by an AQM decision (CoDel head drops; excludes
    /// overflow tail drops, which count under `net.queue_drops`).
    pub const NET_AQM_DROPS: &str = "net.aqm_drops";
    /// High-water mark of any link queue backlog, in bytes (gauge).
    pub const NET_QUEUE_DEPTH_HWM: &str = "net.queue_depth_hwm_bytes";
    /// Data segments sent (including retransmissions).
    pub const TCP_SEGS_SENT: &str = "tcp.segs_sent";
    /// Segments retransmitted.
    pub const TCP_RETRANSMITS: &str = "tcp.retransmits";
    /// Retransmission timeouts fired.
    pub const TCP_RTOS: &str = "tcp.rtos";
    /// Fast retransmits (triple duplicate ACK / SACK recovery entries).
    pub const TCP_FAST_RETRANSMITS: &str = "tcp.fast_retransmits";
    /// Voluntary slow-start exits (HyStart-style, without packet loss).
    pub const CC_HYSTART_EXITS: &str = "cc.hystart_exits";
    /// SUSS pacing rounds started (one per predicted-growth period).
    pub const SUSS_PACING_ROUNDS: &str = "suss.pacing_rounds";
    /// Fault-injection actions taken by a link fault plan (GE-burst drops,
    /// flap drops, reorder hold-backs, duplications).
    pub const NET_FAULTS_INJECTED: &str = "net.faults_injected";
    /// Link flap recoveries dispatched (one per scheduled outage window).
    pub const NET_LINK_FLAPS: &str = "net.link_flaps";
    /// Fleet flows spawned (arrival events realized as live senders).
    pub const FLEET_FLOWS_SPAWNED: &str = "fleet.flows_spawned";
    /// Fleet flows fully delivered and torn down.
    pub const FLEET_FLOWS_COMPLETED: &str = "fleet.flows_completed";
    /// Fleet flows still incomplete at the drain horizon (torn down
    /// without an FCT sample).
    pub const FLEET_FLOWS_EXPIRED: &str = "fleet.flows_expired";
    /// Endpoint slot pairs (sender+receiver nodes, edge links, routes)
    /// created — the peak-concurrency footprint.
    pub const FLEET_SLOTS_CREATED: &str = "fleet.slots_created";
    /// Flows installed into a recycled slot instead of a fresh one.
    pub const FLEET_SLOT_REUSES: &str = "fleet.slot_reuses";
    /// Flows whose ConnTrace sampling was suppressed by the
    /// concurrent-flow cap.
    pub const FLEET_TRACES_SUPPRESSED: &str = "fleet.traces_suppressed";
    /// QUIC packets transmitted (new data and retransmissions alike —
    /// every transmission gets a fresh packet number).
    pub const QUIC_PKTS_SENT: &str = "quic.pkts_sent";
    /// QUIC packets carrying retransmitted stream bytes.
    pub const QUIC_RETRANSMITS: &str = "quic.retransmits";
    /// QUIC packets declared lost by the detector (packet threshold or
    /// time threshold).
    pub const QUIC_PKTS_LOST: &str = "quic.pkts_lost";
    /// QUIC probe-timeout (PTO) expirations.
    pub const QUIC_PTOS: &str = "quic.ptos";
    /// QUIC ACK frames transmitted.
    pub const QUIC_ACKS_SENT: &str = "quic.acks_sent";
    /// Sends deferred by the QUIC pacing strategy (one per armed pacing
    /// timer; the knob the pacing-strategy matrix turns).
    pub const QUIC_PACE_DELAYS: &str = "quic.pace_delays";
    /// Campaign cells re-run after a panic and eventually recovered.
    pub const RUNNER_CELL_RETRIES: &str = "runner.cell_retries";
    /// Campaign cells abandoned by the wall-clock/progress watchdog.
    pub const RUNNER_CELL_TIMEOUTS: &str = "runner.cell_timeouts";
    /// Campaign cells that ended a run without a result (panicked out of
    /// retries or timed out).
    pub const RUNNER_CELLS_FAILED: &str = "runner.cells_failed";
    /// Cache entries that failed to load and were quarantined on disk.
    pub const RUNNER_CACHE_QUARANTINED: &str = "runner.cache_quarantined";
    /// Dead shard children restarted by the coordinator's supervisor.
    pub const RUNNER_SHARD_RESTARTS: &str = "runner.shard_restarts";
    /// Orphaned cells from dead shards recomputed inline at merge time.
    pub const RUNNER_CELLS_REASSIGNED: &str = "runner.cells_reassigned";
    /// Shard heartbeat leases that expired (frozen progress epoch).
    pub const RUNNER_LEASE_EXPIRIES: &str = "runner.lease_expiries";
}
