//! Cross-transport congestion-control conformance.
//!
//! Every controller in this crate must behave *identically* whether it is
//! driven through the TCP-shaped [`CongestionControl`] interface
//! (sequence-space `AckView`s) or the quinn-shaped [`QuicController`]
//! adapter (byte counts and times only). That equivalence is the paper's
//! portability claim made executable: SUSS needs nothing from the
//! transport beyond monotone sent/delivered byte counters and RTT
//! samples.
//!
//! One canonical ACK/loss trace — slow-start ACK trains at a 100 ms RTT,
//! a mid-trace fast-retransmit loss, a later persistent-congestion
//! (timeout) event, then recovery rounds — is replayed through both
//! interfaces in lockstep. After every callback the two sides must agree
//! on cwnd, slow-start phase, ssthresh, pacing rate, and the next
//! internal timer; at the end their decision-event streams (including
//! SUSS's per-round growth estimates and pacing starts) must match
//! record for record.

use cc_algos::{make_controller, make_quic_controller, CcKind, QuicController, QuicRtt};
use std::time::Duration;
use tcp_sim::cc::{AckView, CcEvent, CongestionControl, LossKind, LossView};

const MSS: u64 = 1_448;
const IW: u64 = 10 * MSS;
const RTT_NS: u64 = 100_000_000; // 100 ms
const ACK_SPACING_NS: u64 = 100_000; // tight ACK train
const ACK_QUANTUM: u64 = 10 * MSS;

const ALL_KINDS: [CcKind; 7] = [
    CcKind::Reno,
    CcKind::Cubic,
    CcKind::CubicSuss,
    CcKind::CubicHspp,
    CcKind::Bbr,
    CcKind::Bbr2,
    CcKind::BbrSuss,
];

/// Controllers that respond to loss by setting a slow-start threshold.
const LOSS_BASED: [CcKind; 4] = [
    CcKind::Reno,
    CcKind::Cubic,
    CcKind::CubicSuss,
    CcKind::CubicHspp,
];

/// The TCP-side harness: drives a [`CongestionControl`] with the exact
/// byte-counter arithmetic the `QuicAdapter` performs, so any behavioral
/// difference is the controller's, not the harness's.
struct TcpSide {
    cc: Box<dyn CongestionControl>,
    total_sent: u64,
    total_acked: u64,
}

/// The QUIC-side harness: the same controller behind
/// [`make_quic_controller`]'s adapter.
struct QuicSide {
    cc: Box<dyn QuicController>,
}

impl TcpSide {
    fn send(&mut self, now: u64, bytes: u64) {
        self.total_sent += bytes;
        self.cc.on_sent(now, bytes, self.total_sent);
    }

    fn ack(&mut self, now: u64, sent_at: u64, bytes: u64, rtt: &QuicRtt) {
        self.total_acked += bytes;
        self.cc.on_ack(&AckView {
            now,
            ack_seq: self.total_acked,
            newly_acked: bytes,
            rtt_sample: (sent_at <= now).then_some(rtt.latest),
            srtt: Some(rtt.smoothed),
            min_rtt: Some(rtt.min),
            inflight: self.total_sent - self.total_acked,
            snd_nxt: self.total_sent,
            delivered: self.total_acked,
            app_limited: false,
        });
    }

    fn loss(&mut self, now: u64, persistent: bool, lost_bytes: u64) {
        self.cc.on_congestion_event(&LossView {
            now,
            kind: if persistent {
                LossKind::Timeout
            } else {
                LossKind::FastRetransmit
            },
            lost_bytes,
            inflight: self.total_sent - self.total_acked,
        });
    }
}

impl QuicSide {
    fn send(&mut self, now: u64, bytes: u64) {
        self.cc.on_sent(now, bytes);
    }

    fn ack(&mut self, now: u64, sent_at: u64, bytes: u64, rtt: &QuicRtt) {
        self.cc.on_ack(now, sent_at, bytes, false, rtt);
    }

    fn loss(&mut self, now: u64, persistent: bool, lost_bytes: u64) {
        self.cc.on_congestion_event(now, 0, persistent, lost_bytes);
    }
}

/// Everything the lockstep driver records about one replay.
struct Outcome {
    events: Vec<CcEvent>,
    saw_loss_ssthresh: bool,
    pre_loss_cwnd_monotone: bool,
    max_cwnd: u64,
}

/// Replay the canonical trace through both sides in lockstep, asserting
/// observable equality after every callback.
fn replay(kind: CcKind) -> Outcome {
    let mut tcp = TcpSide {
        cc: make_controller(kind, IW, MSS),
        total_sent: 0,
        total_acked: 0,
    };
    let mut quic = QuicSide {
        cc: make_quic_controller(kind, IW, MSS),
    };
    let mut events_tcp = Vec::new();
    let mut events_quic = Vec::new();
    let mut outcome = Outcome {
        events: Vec::new(),
        saw_loss_ssthresh: false,
        pre_loss_cwnd_monotone: true,
        max_cwnd: 0,
    };

    // Lockstep equality check, run after every callback on both sides.
    let check = |tcp: &mut TcpSide, quic: &mut QuicSide, step: &str| -> u64 {
        let (wt, wq) = (tcp.cc.cwnd(), quic.cc.window());
        assert_eq!(wt, wq, "{kind:?} cwnd diverged at {step}");
        assert_eq!(
            tcp.cc.in_slow_start(),
            quic.cc.in_slow_start(),
            "{kind:?} slow-start phase diverged at {step}"
        );
        assert_eq!(
            tcp.cc.ssthresh(),
            quic.cc.ssthresh(),
            "{kind:?} ssthresh diverged at {step}"
        );
        assert_eq!(
            tcp.cc.pacing_rate(),
            quic.cc.pacing_rate(),
            "{kind:?} pacing rate diverged at {step}"
        );
        assert_eq!(
            tcp.cc.next_timer(),
            quic.cc.next_timer(),
            "{kind:?} timer schedule diverged at {step}"
        );
        if let Some(rate) = tcp.cc.pacing_rate() {
            assert!(
                rate.is_finite() && rate > 0.0,
                "{kind:?} pacing rate {rate} at {step}"
            );
        }
        assert_eq!(tcp.cc.name(), quic.cc.name());
        wt
    };
    // Drain both sides' due internal timers (SUSS guard/pacing windows,
    // BBR phase schedules) up to `now`, in lockstep.
    let fire_until = |tcp: &mut TcpSide, quic: &mut QuicSide, now: u64| {
        let mut guard = 0;
        while let Some(at) = tcp.cc.next_timer() {
            if at > now {
                break;
            }
            tcp.cc.on_timer(at);
            quic.cc.on_timer(at);
            guard += 1;
            assert!(guard < 100_000, "{kind:?} timer storm");
        }
        assert_eq!(tcp.cc.next_timer(), quic.cc.next_timer());
    };

    // RTT state shared by both harnesses (the transport would own this).
    let mut srtt = Duration::ZERO;
    let mut min_rtt = Duration::MAX;

    // t = 0: the initial window departs as one burst.
    tcp.send(0, IW);
    quic.send(0, IW);
    let w0 = check(&mut tcp, &mut quic, "iw");
    assert_eq!(w0, IW, "{kind:?} must start at the initial window");

    let mut now = 0u64;
    let mut loss_seen = false;
    let mut prev_cwnd = w0;
    for round in 0..7u32 {
        now = (u64::from(round) + 1) * RTT_NS;
        fire_until(&mut tcp, &mut quic, now);

        // ACK the bytes that were in flight at the round boundary in
        // quantum-sized, tightly spaced ACKs — the per-packet-ACK train
        // both transports produce. Data sent *during* the train stays in
        // flight for the next round, exactly like a real RTT pipeline.
        let mut to_ack = tcp.total_sent - tcp.total_acked;
        while to_ack > 0 {
            let bytes = to_ack.min(ACK_QUANTUM);
            to_ack -= bytes;
            let sent_at = now - RTT_NS;
            let latest = Duration::from_nanos(RTT_NS);
            srtt = if srtt.is_zero() {
                latest
            } else {
                (srtt * 7 + latest) / 8
            };
            min_rtt = min_rtt.min(latest);
            let rtt = QuicRtt {
                latest,
                smoothed: srtt,
                min: min_rtt,
            };
            tcp.ack(now, sent_at, bytes, &rtt);
            quic.ack(now, sent_at, bytes, &rtt);
            let w = check(&mut tcp, &mut quic, "ack");
            if !loss_seen && tcp.cc.in_slow_start() && w < prev_cwnd {
                outcome.pre_loss_cwnd_monotone = false;
            }
            prev_cwnd = w;
            outcome.max_cwnd = outcome.max_cwnd.max(w);
            fire_until(&mut tcp, &mut quic, now);

            // ACK clocking: send whatever the (equal) windows grant.
            let inflight = tcp.total_sent - tcp.total_acked;
            if w > inflight {
                let grant = w - inflight;
                tcp.send(now, grant);
                quic.send(now, grant);
                check(&mut tcp, &mut quic, "send");
            }
            now += ACK_SPACING_NS;
        }

        events_tcp.extend(tcp.cc.take_events());
        events_quic.extend(quic.cc.take_events());

        // Mid-trace: a fast-retransmit loss episode after round 3.
        if round == 3 {
            tcp.loss(now, false, MSS);
            quic.loss(now, false, MSS);
            check(&mut tcp, &mut quic, "loss");
            loss_seen = true;
            if tcp.cc.ssthresh().is_some() {
                outcome.saw_loss_ssthresh = true;
            }
        }
        // Later: persistent congestion (the QUIC mapping of an RTO).
        if round == 5 {
            tcp.loss(now, true, 4 * MSS);
            quic.loss(now, true, 4 * MSS);
            check(&mut tcp, &mut quic, "persistent");
            assert!(
                tcp.cc.cwnd() <= IW,
                "{kind:?} persistent congestion must collapse the window"
            );
        }
        prev_cwnd = tcp.cc.cwnd();
    }

    fire_until(&mut tcp, &mut quic, now + 10 * RTT_NS);
    events_tcp.extend(tcp.cc.take_events());
    events_quic.extend(quic.cc.take_events());
    assert_eq!(
        events_tcp, events_quic,
        "{kind:?} decision-event streams diverged across transports"
    );
    outcome.events = events_tcp;
    outcome
}

#[test]
fn every_controller_is_transport_equivalent() {
    for kind in ALL_KINDS {
        let out = replay(kind);
        assert!(
            out.max_cwnd > IW,
            "{kind:?} must grow beyond the initial window"
        );
    }
}

#[test]
fn window_growth_is_monotone_in_pre_loss_slow_start() {
    // Window-based controllers must never shrink cwnd while in clean
    // slow start. (The BBR family is exempt: its cwnd tracks the
    // evolving BDP estimate, which may legitimately fluctuate.)
    for kind in LOSS_BASED {
        let out = replay(kind);
        assert!(
            out.pre_loss_cwnd_monotone,
            "{kind:?} cwnd must not shrink in pre-loss slow start"
        );
    }
}

#[test]
fn loss_based_controllers_set_ssthresh_on_loss() {
    for kind in LOSS_BASED {
        let out = replay(kind);
        assert!(
            out.saw_loss_ssthresh,
            "{kind:?} must set ssthresh on the loss episode"
        );
    }
}

#[test]
fn suss_round_schedule_is_identical_across_transports() {
    // The SUSS-specific slice of the equivalence: its per-round growth
    // estimates and pacing plan fire identically on both transports
    // (already asserted record-for-record inside `replay`; here we check
    // the schedule actually engaged, so the assertion has teeth).
    let out = replay(CcKind::CubicSuss);
    let rounds: Vec<(u32, u32)> = out
        .events
        .iter()
        .filter_map(|e| match e {
            CcEvent::SussRound { round, k } => Some((*round, *k)),
            _ => None,
        })
        .collect();
    assert!(
        !rounds.is_empty(),
        "SUSS must estimate at least one slow-start round"
    );
    assert!(
        rounds.windows(2).all(|w| w[0].0 < w[1].0),
        "round indices must ascend: {rounds:?}"
    );
    assert!(
        out.events
            .iter()
            .any(|e| matches!(e, CcEvent::SussPacingStarted { .. })),
        "SUSS pacing must start during the clean slow-start rounds"
    );
}

#[test]
fn bbr_suss_boost_follows_the_same_schedule() {
    // The BBR+SUSS extension must also be transport-equivalent with its
    // SUSS machinery engaged, not just idling. (It reports boost windows
    // as `SussPacingStarted`; per-round estimates stay internal.)
    let out = replay(CcKind::BbrSuss);
    assert!(
        out.events
            .iter()
            .any(|e| matches!(e, CcEvent::SussPacingStarted { .. })),
        "BBR+SUSS must arm a STARTUP boost during clean slow start"
    );
}
