//! Engine-determinism acceptance test for the timer-wheel core: a fixed
//! dumbbell cell has golden flow-completion times and counter totals
//! recorded from the seed binary-heap engine, and the production wheel +
//! pool engine must reproduce them bit-for-bit — serially and through a
//! 4-worker campaign with a fresh result cache.
//!
//! If an intentional behavior change moves these numbers, regenerate with
//! `cargo test -p experiments --test determinism -- --ignored --nocapture`
//! and paste the printed constants.

use cc_algos::CcKind;
use experiments::{run_dumbbell_engine, DumbbellFlow, FlowGrid, FlowGridRun};
use netsim::{EngineConfig, SimTime};
use simrunner::RunnerOpts;
use simtrace::names;
use std::time::Duration;
use workload::{DumbbellConfig, MB};

const SEEDS: [u64; 2] = [1, 2];
const PAIRS: usize = 4;

/// Golden flow-0 receiver FCTs in seconds, one per seed, exact bits
/// (`{:?}` prints the shortest round-trip representation, so these
/// literals reproduce the measured f64 exactly).
const GOLD_FCT_SECS: [f64; 2] = [0.915681728, 0.915681728];

/// Golden catalogue counter totals merged over both cells. Scheduler- and
/// pool-internal counters (`net.sched_cascades`, `net.pool_*`) are the
/// only ones allowed to differ across engines and are deliberately absent.
const GOLD_TOTALS: &[(&str, u64)] = &[
    (names::NET_EVENTS, 75378),
    (names::NET_EVENTS_SCHEDULED, 75820),
    (names::NET_QUEUE_DROPS, 1098),
    (names::TCP_SEGS_SENT, 6626),
    (names::TCP_RETRANSMITS, 1098),
    (names::TCP_RTOS, 0),
    (names::TCP_FAST_RETRANSMITS, 16),
    (names::CC_HYSTART_EXITS, 2),
    (names::SUSS_PACING_ROUNDS, 16),
];

/// The fixed cell: four staggered SUSS downloads through a congested
/// 50 Mbps / 50 ms / 1-BDP dumbbell — loss, fast recovery, HyStart and
/// SUSS pacing all exercised, so the goldens pin real protocol behavior.
fn cell(engine: EngineConfig, seed: u64) -> experiments::FlowOutcome {
    cell_scoped(engine, seed, 0)
}

/// [`cell`] with bottleneck scope sampling every `scope_every` packets
/// (0 = off) — the observability arm of the determinism contract.
fn cell_scoped(engine: EngineConfig, seed: u64, scope_every: u64) -> experiments::FlowOutcome {
    let cfg = DumbbellConfig::fairness(Duration::from_millis(50), 1.0, PAIRS);
    let flows: Vec<DumbbellFlow> = (0..PAIRS)
        .map(|i| DumbbellFlow::download(CcKind::CubicSuss, MB, SimTime::from_millis(5 * i as u64)))
        .collect();
    let out = experiments::run_dumbbell_scoped(
        &cfg,
        &flows,
        seed,
        SimTime::from_secs(60),
        engine,
        scope_every,
    );
    let drops = out.bottleneck_drops;
    let mut f0 = out.flows.into_iter().next().expect("pairs > 0");
    f0.bottleneck_drops = drops;
    f0
}

/// The same cells as a FlowGrid campaign under the production engine.
fn wheel_grid() -> FlowGrid {
    let mut grid = FlowGrid::new("determinism-golden");
    grid.batch_fn(
        "dumbbell/golden",
        "topo=dumbbell pairs=4 btlneck=50Mbps rtt=50ms buf=1.0bdp \
         cc=cubic+suss size=1MB stagger=5ms",
        SEEDS.len() as u64,
        SEEDS[0],
        |seed| cell(EngineConfig::default(), seed),
    );
    grid
}

fn assert_matches_golden(run: &FlowGridRun, what: &str) {
    assert_eq!(run.stats.len(), SEEDS.len());
    for (i, s) in run.stats.iter().enumerate() {
        let s = s.as_ref().expect("golden cell failed");
        assert_eq!(
            s.fct_secs.to_bits(),
            GOLD_FCT_SECS[i].to_bits(),
            "{what}: seed {} fct {} != golden {}",
            SEEDS[i],
            s.fct_secs,
            GOLD_FCT_SECS[i],
        );
    }
    let totals = run.counters_total();
    for &(name, want) in GOLD_TOTALS {
        assert_eq!(
            totals.get(name),
            Some(want),
            "{what}: counter {name} diverged from golden"
        );
    }
}

/// The goldens really do come from the seed engine: the binary-heap
/// scheduler without payload pooling reproduces every constant.
#[test]
fn heap_baseline_matches_golden() {
    let mut totals = simtrace::CounterSnapshot::default();
    for (i, &seed) in SEEDS.iter().enumerate() {
        let out = cell(EngineConfig::baseline(), seed);
        assert_eq!(
            out.fct_secs().to_bits(),
            GOLD_FCT_SECS[i].to_bits(),
            "heap: seed {seed} fct {} != golden {}",
            out.fct_secs(),
            GOLD_FCT_SECS[i],
        );
        totals.merge(&out.counters);
    }
    for &(name, want) in GOLD_TOTALS {
        assert_eq!(
            totals.get(name),
            Some(want),
            "heap: counter {name} diverged from golden"
        );
    }
    // The baseline engine never pools or cascades.
    assert_eq!(totals.get(names::NET_POOL_HITS).unwrap_or(0), 0);
    assert_eq!(totals.get(names::NET_SCHED_CASCADES).unwrap_or(0), 0);
}

/// The wheel engine reproduces the heap goldens exactly, both on the
/// serial path and sharded across 4 workers with a fresh cache — the
/// scheduler-equivalence contract, end to end through the campaign layer.
#[test]
fn wheel_reproduces_golden_at_1_and_4_workers() {
    let serial = wheel_grid().run(&RunnerOpts::serial());
    assert_matches_golden(&serial, "wheel serial");
    // The wheel engine actually pooled allocations on this workload (the
    // counters above prove pooling didn't change results).
    assert!(
        serial
            .counters_total()
            .get(names::NET_POOL_HITS)
            .unwrap_or(0)
            > 0
    );

    let dir = std::env::temp_dir().join(format!("suss-det-golden-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let parallel = wheel_grid().run(&RunnerOpts::default().with_workers(4).with_cache(&dir));
    assert_eq!(parallel.manifest.cache_hits, 0, "fresh cache must miss");
    assert_matches_golden(&parallel, "wheel 4-worker");
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault-injected cells obey the same determinism contract as clean
/// ones: a faulted grid's FCT bits and counter totals are identical
/// serially and across 4 workers, and the wheel engine reproduces the
/// heap engine exactly under every fault family. No goldens here —
/// the invariant is engine/sharding independence, not pinned values.
#[test]
fn faulted_cells_are_engine_and_worker_invariant() {
    use experiments::chaos::{chaos_scenario, run_flow_faulted_engine, FaultFamily};

    let faulted_grid = |engine: EngineConfig| {
        let scn = chaos_scenario();
        let mut grid = FlowGrid::new("determinism-faulted");
        for family in FaultFamily::ALL {
            let plan = family.plan();
            grid.batch_fn(
                &format!("faulted/{}", family.key()),
                &format!(
                    "{} cc=cubic+suss size={MB} {} engine-check",
                    scn.canonical_params(),
                    plan.canonical_params()
                ),
                SEEDS.len() as u64,
                SEEDS[0],
                move |seed| {
                    run_flow_faulted_engine(&scn, CcKind::CubicSuss, MB, seed, &plan, engine)
                },
            );
        }
        grid
    };
    let assert_same = |a: &FlowGridRun, b: &FlowGridRun, what: &str| {
        assert_eq!(a.stats.len(), b.stats.len());
        for (i, (x, y)) in a.stats.iter().zip(&b.stats).enumerate() {
            let (x, y) = (
                x.as_ref().expect("faulted cell failed"),
                y.as_ref().expect("faulted cell failed"),
            );
            assert_eq!(
                x.fct_secs.to_bits(),
                y.fct_secs.to_bits(),
                "{what}: cell {i} fct {} != {}",
                x.fct_secs,
                y.fct_secs
            );
        }
        let (ta, tb) = (a.counters_total(), b.counters_total());
        for m in &ta.metrics {
            // Scheduler/pool internals legitimately differ across engines.
            if m.name.starts_with("net.sched_") || m.name.starts_with("net.pool_") {
                continue;
            }
            assert_eq!(
                tb.get(&m.name),
                Some(m.value),
                "{what}: counter {} diverged",
                m.name
            );
        }
    };

    let wheel_serial = faulted_grid(EngineConfig::default()).run(&RunnerOpts::serial());
    // Faults really fired: injected losses and flap transitions counted.
    let totals = wheel_serial.counters_total();
    assert!(totals.get(names::NET_FAULTS_INJECTED).unwrap_or(0) > 0);
    assert!(totals.get(names::NET_LINK_FLAPS).unwrap_or(0) > 0);

    let wheel_parallel =
        faulted_grid(EngineConfig::default()).run(&RunnerOpts::default().with_workers(4));
    assert_same(&wheel_serial, &wheel_parallel, "faulted 1-vs-4 workers");

    let heap_serial = faulted_grid(EngineConfig::baseline()).run(&RunnerOpts::serial());
    assert_same(&wheel_serial, &heap_serial, "faulted wheel-vs-heap");
}

/// Observability is free: running the golden cell with every telemetry
/// layer on — span profiling, a live flight recorder, and bottleneck
/// scope sampling — reproduces the bare run bit-for-bit on both engines.
/// The instrumented arm must also actually *observe* something, so a
/// regression that silently disables telemetry can't fake a pass.
#[test]
fn observability_never_changes_results() {
    for engine in [EngineConfig::default(), EngineConfig::baseline()] {
        let bare = cell(engine, SEEDS[0]);
        let _ = simtrace::runtime::take_scope_annotations();
        let _ = simtrace::prof::take();

        simtrace::prof::set_enabled(true);
        let ring = simtrace::FlightRecorder::new(simtrace::flightrec::DEFAULT_CAPACITY);
        simtrace::flightrec::install(Some(ring.clone()));
        let instrumented = cell_scoped(engine, SEEDS[0], 4);
        simtrace::flightrec::install(None);
        simtrace::prof::set_enabled(false);
        let prof = simtrace::prof::take();
        let scopes = simtrace::runtime::take_scope_annotations();

        // Telemetry really happened...
        assert!(prof.spans.iter().any(|s| s.path == "dumbbell/cell"));
        assert!(
            scopes
                .iter()
                .any(|a| a.label == "scope/dumbbell/queue_depth" && a.n > 0),
            "scope sampling produced nothing: {scopes:?}"
        );
        assert!(!ring.to_jsonl().is_empty(), "flight recorder stayed empty");

        // ...and changed nothing.
        assert_eq!(
            instrumented.fct_secs().to_bits(),
            bare.fct_secs().to_bits(),
            "telemetry perturbed the FCT"
        );
        assert_eq!(instrumented.segs_sent, bare.segs_sent);
        assert_eq!(instrumented.segs_retransmitted, bare.segs_retransmitted);
        assert_eq!(instrumented.bottleneck_drops, bare.bottleneck_drops);
        assert_eq!(
            instrumented.counters, bare.counters,
            "telemetry leaked into the metric registry"
        );
    }
}

/// CC decision events survive a JSONL round trip: a traced golden-cell
/// flow exports through a [`simtrace::JsonlSink`] and parses back with
/// [`simtrace::query::parse_jsonl`] record-for-record — kinds, payloads,
/// and reason codes intact.
#[test]
fn cc_events_roundtrip_through_jsonl() {
    use simtrace::{kind, EventSink, TraceRecord};
    use tcp_sim::trace::ConnTrace;

    let cfg = DumbbellConfig::fairness(Duration::from_millis(50), 1.0, PAIRS);
    let flows: Vec<DumbbellFlow> = (0..PAIRS)
        .map(|i| {
            DumbbellFlow::download(CcKind::CubicSuss, MB, SimTime::from_millis(5 * i as u64))
                .traced()
        })
        .collect();
    let out = run_dumbbell_engine(
        &cfg,
        &flows,
        SEEDS[0],
        SimTime::from_secs(60),
        EngineConfig::default(),
    );
    // The congested SUSS cell exercises the whole decision catalogue
    // (HyStart exits happen on later-starting flows, so check the union).
    let kinds: Vec<&'static str> = out
        .flows
        .iter()
        .flat_map(|f| {
            f.trace
                .events
                .iter()
                .map(|(_, e)| ConnTrace::record_kind(e))
        })
        .collect();
    for want in [
        kind::CC_CWND,
        kind::CC_SSTHRESH,
        kind::CC_PACING,
        kind::SUSS_ROUND,
        kind::HYSTART,
    ] {
        assert!(kinds.contains(&want), "no {want} event in {kinds:?}");
    }

    for (i, flow) in out.flows.iter().enumerate() {
        let trace = &flow.trace;
        let id = i as u64 + 1;
        let mut buf = Vec::new();
        let mut sink = simtrace::JsonlSink::new(&mut buf);
        trace.export(id, Some("roundtrip"), &mut sink);
        sink.flush().expect("jsonl write");
        let text = String::from_utf8(buf).expect("utf8 jsonl");

        let parsed = simtrace::query::parse_jsonl(&text).expect("parse back");
        // Reconstruct what export emitted and demand full fidelity.
        let mut expected = Vec::new();
        for s in &trace.samples {
            let mut rec = TraceRecord::event(s.t.as_nanos(), id, kind::SAMPLE);
            rec.cwnd = Some(s.cwnd);
            rec.inflight = Some(s.inflight);
            rec.delivered = Some(s.delivered);
            rec.rtt_ns = s.rtt.map(|d| d.as_nanos() as u64);
            rec.srtt_ns = s.srtt.map(|d| d.as_nanos() as u64);
            rec.run = Some("roundtrip".into());
            expected.push(rec);
        }
        for (t, e) in &trace.events {
            let mut rec = TraceRecord::event(t.as_nanos(), id, ConnTrace::record_kind(e));
            ConnTrace::fill_record(&mut rec, e);
            rec.run = Some("roundtrip".into());
            expected.push(rec);
        }
        assert_eq!(parsed.len(), expected.len());
        assert_eq!(parsed, expected, "JSONL round trip lost information");

        // Every CC decision carries its reason code through the round trip.
        for rec in parsed.iter().filter(|r| {
            [
                kind::CC_CWND,
                kind::CC_SSTHRESH,
                kind::CC_PACING,
                kind::HYSTART,
            ]
            .contains(&r.kind.as_str())
        }) {
            assert!(
                rec.reason.as_deref().is_some_and(|r| !r.is_empty()),
                "missing reason on {rec:?}"
            );
        }
    }
}

/// Regeneration helper: prints the constants to paste above.
#[test]
#[ignore = "golden generator, run with --ignored --nocapture"]
fn print_golden() {
    let mut totals = simtrace::CounterSnapshot::default();
    let mut fcts = Vec::new();
    for &seed in &SEEDS {
        let out = cell(EngineConfig::baseline(), seed);
        fcts.push(out.fct_secs());
        totals.merge(&out.counters);
    }
    println!("const GOLD_FCT_SECS: [f64; 2] = {fcts:?};");
    for &(name, _) in GOLD_TOTALS {
        println!("({name:?}, {}),", totals.get(name).unwrap_or(0));
    }
}
