//! # netsim — deterministic discrete-event network simulator
//!
//! The substrate for the SUSS reproduction: a packet-level, byte-accurate
//! network simulator with virtual time. It models exactly the elements the
//! paper's testbeds exercise:
//!
//! * links with serialization rate (optionally time-varying, Appendix B),
//!   propagation delay, `netem`-style correlated jitter, and i.i.d. loss;
//! * drop-tail bottleneck buffers sized in BDP multiples;
//! * store-and-forward routers;
//! * dumbbell and single-path topologies.
//!
//! The engine is single-threaded and fully deterministic — two runs with
//! the same seed produce bit-identical traces, which is what lets the
//! experiment harness run SUSS-on vs. SUSS-off over *identical* network
//! conditions (the simulator's equivalent of the paper's 50-iteration
//! A/B download batches).
//!
//! ## Example
//!
//! ```
//! use netsim::{Sim, Agent, Ctx, Packet, FlowId, LinkSpec, Bandwidth, SimTime};
//! use std::any::Any;
//! use std::time::Duration;
//!
//! struct Counter { got: usize }
//! impl Agent for Counter {
//!     fn on_packet(&mut self, _p: Packet, _ctx: &mut Ctx<'_>) { self.got += 1; }
//!     fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_>) {}
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let mut sim = Sim::new(42);
//! let a = sim.add_agent(Box::new(Counter { got: 0 }));
//! let b = sim.add_agent(Box::new(Counter { got: 0 }));
//! let ab = sim.add_half_link(a, b, LinkSpec::clean(
//!     Bandwidth::from_mbps(10), Duration::from_millis(5)));
//! sim.with_agent_ctx::<Counter, _>(a, |_, ctx| {
//!     ctx.send(ab, Packet::opaque(FlowId(1), a, b, 1500));
//! });
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.agent::<Counter>(b).got, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bandwidth;
pub mod capture;
pub mod faults;
pub mod link;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod router;
pub mod sim;
pub mod time;
pub mod topology;
pub mod traffic;
mod wheel;

pub use bandwidth::Bandwidth;
pub use capture::{Capture, CaptureEvent, CaptureKind};
pub use faults::{FaultPlan, FlapWindow, GilbertElliott, ReorderModel};
pub use link::{JitterModel, LinkSpec, LinkStats, Qdisc, RateSchedule};
pub use packet::{FlowId, LinkId, NodeId, Packet, PacketMeta, PayloadHandle, PayloadPool};
pub use queue::{CodelQueue, DropTailQueue, Queue, QueueStats};
pub use rng::SimRng;
pub use router::Router;
pub use sim::{Agent, Ctx, EngineConfig, SchedulerKind, ScopeKind, ScopeSink, Sim};
pub use time::SimTime;
pub use topology::{
    build_dumbbell, build_parking_lot, Dumbbell, DumbbellSpec, ParkingLot, ParkingLotSpec,
};
pub use traffic::{ArrivalProcess, TrafficSink, TrafficSource};
