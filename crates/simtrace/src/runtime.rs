//! Thread-local per-cell runtime accounting.
//!
//! A campaign worker cannot see inside the closure it runs, so the
//! simulation reports its own effort here: after a run completes, the
//! experiment layer calls [`add_cell_events`] with the number of simulator
//! events dispatched, and the campaign runner brackets each cell with
//! [`take_cell_events`] to attribute the count to that cell. Both sides
//! touch only a thread-local `Cell`, so the accounting is free of
//! synchronization and safe with any number of workers.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    static CELL_EVENTS: Cell<u64> = const { Cell::new(0) };
    static PROGRESS_SINK: RefCell<Option<Arc<AtomicU64>>> = const { RefCell::new(None) };
    static SCOPE_ANNOTATIONS: RefCell<Vec<ScopeAnnotation>> = const { RefCell::new(Vec::new()) };
}

/// A percentile summary of one scoped time-series (queue depth, link
/// utilization, sojourn time), reported by the cell that sampled it and
/// folded into the run manifest next to the FCT annotations.
///
/// Lives here rather than in the stats crate so the experiment layer can
/// hand summaries to the campaign runner without a dependency cycle; it
/// carries plain numbers, not the histogram that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeAnnotation {
    /// What was sampled, e.g. `scope/<cell label>/queue_depth`.
    pub label: String,
    /// Number of samples summarized.
    pub n: u64,
    /// 50th percentile (units depend on the series; seconds for depth and
    /// sojourn, a 0–1 fraction for utilization).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

/// Queue a scope summary for the cell currently running on this thread.
/// No-op outside a campaign (the annotation is simply never taken).
pub fn add_scope_annotation(a: ScopeAnnotation) {
    SCOPE_ANNOTATIONS.with(|s| s.borrow_mut().push(a));
}

/// Take and reset this thread's queued scope annotations. Campaign
/// workers call this after each cell, pairing with [`take_cell_events`].
pub fn take_scope_annotations() -> Vec<ScopeAnnotation> {
    SCOPE_ANNOTATIONS.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Credit `n` simulator events to the cell currently running on this
/// thread. No-op outside a campaign (the count is simply never taken).
pub fn add_cell_events(n: u64) {
    CELL_EVENTS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Take and reset this thread's event count. Campaign workers call this
/// after each cell; calling it before running a cell discards leftovers
/// from unrelated work on the same thread.
pub fn take_cell_events() -> u64 {
    CELL_EVENTS.with(|c| c.replace(0))
}

/// Install a liveness heartbeat for work running on this thread, or clear
/// it with `None`.
///
/// While a sink is installed, [`tick_progress`] bumps the shared counter; a
/// campaign watchdog on another thread reads it to distinguish a slow cell
/// (counter advancing) from a livelocked one (counter frozen). The simulator
/// ticks from its dispatch loop, so any cell built on `netsim` gets livelock
/// detection for free.
pub fn set_progress_sink(sink: Option<Arc<AtomicU64>>) {
    PROGRESS_SINK.with(|s| *s.borrow_mut() = sink);
}

/// Signal that work on this thread is still making progress. No-op when no
/// sink is installed (the common, non-campaign case).
pub fn tick_progress() {
    PROGRESS_SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            sink.fetch_add(1, Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_resets() {
        take_cell_events();
        add_cell_events(3);
        add_cell_events(4);
        assert_eq!(take_cell_events(), 7);
        assert_eq!(take_cell_events(), 0);
    }

    #[test]
    fn progress_ticks_only_with_a_sink() {
        tick_progress(); // no sink installed: must not panic
        let sink = Arc::new(AtomicU64::new(0));
        set_progress_sink(Some(sink.clone()));
        tick_progress();
        tick_progress();
        set_progress_sink(None);
        tick_progress();
        assert_eq!(sink.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn scope_annotations_queue_and_reset() {
        take_scope_annotations();
        add_scope_annotation(ScopeAnnotation {
            label: "scope/x/queue_depth".into(),
            n: 10,
            p50: 0.001,
            p90: 0.002,
            p99: 0.003,
            p999: 0.004,
        });
        let taken = take_scope_annotations();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].label, "scope/x/queue_depth");
        assert!(take_scope_annotations().is_empty());
    }

    #[test]
    fn threads_are_independent() {
        take_cell_events();
        add_cell_events(5);
        let other = std::thread::spawn(|| {
            add_cell_events(1);
            take_cell_events()
        })
        .join()
        .unwrap();
        assert_eq!(other, 1);
        assert_eq!(take_cell_events(), 5);
    }
}
