//! Virtual time for the discrete-event simulator.
//!
//! Simulation time is a monotonically non-decreasing count of nanoseconds
//! since the start of the simulation, wrapped in [`SimTime`]. Intervals are
//! expressed with [`std::time::Duration`], which gives us well-tested
//! arithmetic and conversion helpers for free.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is `Copy`, totally ordered, and supports arithmetic with
/// [`Duration`]. The simulator guarantees events are dispatched in
/// non-decreasing `SimTime` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant. Used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds since simulation start.
    ///
    /// Negative values saturate to [`SimTime::ZERO`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime((s * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds since simulation start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration::from_nanos)
    }

    /// Saturating addition of a duration (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_as_nanos_u64(d)))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

/// Convert a [`Duration`] to u64 nanoseconds, saturating on overflow.
///
/// Simulations never run anywhere near 2^64 ns (~584 years), so saturation
/// only matters for sentinel values like `Duration::MAX`.
pub(crate) fn duration_as_nanos_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// Elapsed time between two instants.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`; saturates to
    /// zero in release builds (matching `Instant` semantics would panic, but
    /// a simulator must be robust against benign reordering at equal times).
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {self:?} - {rhs:?}"
        );
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_secs_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    fn add_assign_duration() {
        let mut t = SimTime::from_millis(1);
        t += Duration::from_millis(2);
        assert_eq!(t, SimTime::from_millis(3));
    }

    #[test]
    fn subtraction_gives_duration() {
        let a = SimTime::from_millis(30);
        let b = SimTime::from_millis(10);
        assert_eq!(a - b, Duration::from_millis(20));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(30);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_millis(20));
    }

    #[test]
    fn checked_since() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(30);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(Duration::from_millis(20)));
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(Duration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(SimTime::MAX + Duration::MAX, SimTime::MAX);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn ordering_is_total() {
        let mut ts = vec![
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        ts.sort();
        assert_eq!(
            ts,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_millis(3)
            ]
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
