//! The receiving endpoint: reassembly and ACK generation.
//!
//! The receiver reassembles the byte stream, generates cumulative ACKs
//! with up to three SACK blocks, and echoes send timestamps for RTT
//! sampling. Out-of-order arrivals trigger immediate duplicate ACKs (as
//! all real stacks do); in-order arrivals follow the configured ACK
//! policy (per-packet by default, or every-N with a delayed-ACK timer).

use crate::ranges::RangeSet;
use crate::segment::{AckSeg, DataSeg};
use netsim::{Agent, Ctx, FlowId, LinkId, NodeId, Packet, SimTime};
use std::any::Any;
use std::time::Duration;

/// ACK generation policy.
#[derive(Debug, Clone, Copy)]
pub struct AckPolicy {
    /// ACK every `every_n` in-order segments (1 = per-packet ACKing).
    pub every_n: u32,
    /// Flush a pending delayed ACK after this much time.
    pub delay: Duration,
    /// Receive buffer in bytes, bounding the advertised window. Defaults
    /// to effectively unlimited (modern autotuned buffers); set small to
    /// study receiver-limited transfers.
    pub recv_buffer: u64,
}

impl Default for AckPolicy {
    fn default() -> Self {
        // Per-packet ACKs: what Linux does during slow-start via quickack,
        // and the regime the paper's Δt measurements assume.
        AckPolicy {
            every_n: 1,
            delay: Duration::from_millis(40),
            recv_buffer: u64::MAX,
        }
    }
}

impl AckPolicy {
    /// Classic delayed ACKs: every second segment, 40 ms flush.
    pub fn delayed() -> Self {
        AckPolicy {
            every_n: 2,
            delay: Duration::from_millis(40),
            recv_buffer: u64::MAX,
        }
    }

    /// Bound the advertised receive window.
    pub fn with_recv_buffer(mut self, bytes: u64) -> Self {
        self.recv_buffer = bytes;
        self
    }
}

/// A TCP-like receiving endpoint for one flow.
pub struct ReceiverEndpoint {
    flow: FlowId,
    peer: Option<NodeId>,
    out: Option<LinkId>,
    policy: AckPolicy,
    received: RangeSet,
    /// Learned from the FIN-marked segment: total flow length.
    flow_bytes: Option<u64>,
    /// Time the full flow was reassembled (the paper's download-complete
    /// instant; FCT at the receiver).
    complete_at: Option<SimTime>,
    /// In-order segments since the last ACK was sent.
    unacked_segs: u32,
    /// Echo state from the most recent data segment.
    pending_echo: Option<(u64, bool)>,
    delack_gen: u64,
    delack_armed: bool,
    /// Total data segments received (including duplicates).
    pub segs_received: u64,
    /// Total ACKs sent.
    pub acks_sent: u64,
}

impl ReceiverEndpoint {
    /// Create a receiver for `flow`. Call [`set_peer`](Self::set_peer) and
    /// [`set_egress`](Self::set_egress) once the topology is wired.
    pub fn new(flow: FlowId, policy: AckPolicy) -> Self {
        ReceiverEndpoint {
            flow,
            peer: None,
            out: None,
            policy,
            received: RangeSet::new(),
            flow_bytes: None,
            complete_at: None,
            unacked_segs: 0,
            pending_echo: None,
            delack_gen: 0,
            delack_armed: false,
            segs_received: 0,
            acks_sent: 0,
        }
    }

    /// Wire the egress half-link ACKs travel on.
    pub fn set_egress(&mut self, link: LinkId) {
        self.out = Some(link);
    }

    /// Set the sending peer's node id.
    pub fn set_peer(&mut self, peer: NodeId) {
        self.peer = Some(peer);
    }

    /// Bytes received in order from offset 0.
    pub fn in_order_bytes(&self) -> u64 {
        self.received.contiguous_end(0)
    }

    /// Time the flow finished reassembling, if it has.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.complete_at
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_>) {
        let Some(out) = self.out else { return };
        let Some((echo_ts, echo_rtx)) = self.pending_echo else {
            return;
        };
        let cum = self.received.contiguous_end(0);
        // Flow control: in-order data is consumed by the application
        // immediately, so only out-of-order bytes occupy the buffer.
        let held = self
            .received
            .total_bytes()
            .saturating_sub(cum.min(self.received.total_bytes()));
        let rwnd = self.policy.recv_buffer.saturating_sub(held);
        let ack = AckSeg {
            flow: self.flow,
            ack_seq: cum,
            sack: self.received.sack_blocks(cum, 3),
            echo_ts,
            echo_retransmit: echo_rtx,
            segs_covered: self.unacked_segs.max(1),
            rwnd,
        };
        let wire = ack.wire_bytes();
        let me = ctx.self_id();
        let peer = self.peer.expect("receiver peer not wired (call set_peer)");
        let boxed = ctx.alloc_payload(ack);
        ctx.send(
            out,
            Packet::with_boxed_payload(self.flow, me, peer, wire, boxed),
        );
        self.acks_sent += 1;
        self.unacked_segs = 0;
        self.delack_gen += 1; // cancel any pending delayed-ACK flush
        self.delack_armed = false;
    }

    fn handle_data(&mut self, seg: DataSeg, ctx: &mut Ctx<'_>) {
        self.segs_received += 1;
        let now = ctx.now();
        let cum_before = self.received.contiguous_end(0);
        let in_order = seg.seq <= cum_before;
        self.received.insert(seg.range());
        if seg.fin {
            self.flow_bytes = Some(seg.range().end);
        }
        self.pending_echo = Some((seg.sent_at, seg.retransmit));
        self.unacked_segs += 1;

        if self.complete_at.is_none() {
            if let Some(total) = self.flow_bytes {
                if self.received.contiguous_end(0) >= total {
                    self.complete_at = Some(now);
                }
            }
        }

        let gap_present = self.received.num_ranges() > 1;
        if !in_order || gap_present || self.unacked_segs >= self.policy.every_n || seg.fin {
            // Immediate ACK: out-of-order data, dupACK duty, quota reached,
            // or the final segment.
            self.send_ack(ctx);
        } else if !self.delack_armed {
            self.delack_gen += 1;
            self.delack_armed = true;
            ctx.set_timer(now + self.policy.delay, self.delack_gen);
        }
    }
}

impl Agent for ReceiverEndpoint {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if pkt.flow != self.flow {
            return;
        }
        if let Ok((seg, _meta)) = ctx.take_payload::<DataSeg>(pkt) {
            self.handle_data(seg, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == self.delack_gen && self.delack_armed {
            self.delack_armed = false;
            if self.unacked_segs > 0 {
                self.send_ack(ctx);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
