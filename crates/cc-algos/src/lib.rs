//! # cc-algos — congestion-control algorithms for the SUSS reproduction
//!
//! Every controller the paper's evaluation exercises, implemented against
//! the `tcp-sim` controller trait (which mirrors userspace QUIC stacks):
//!
//! * [`Reno`] — the canonical AIMD baseline,
//! * [`Cubic`] — RFC 9438 CUBIC with classic HyStart (the paper's
//!   "SUSS off" arm and the Linux/Windows/macOS default),
//! * [`CubicSuss`] — **the paper's contribution**: CUBIC with the SUSS
//!   slow-start accelerator from `suss-core`,
//! * [`CubicHspp`] — CUBIC with HyStart++ (RFC 9406), the IETF's
//!   related-work alternative,
//! * [`Bbr`] / [`Bbr2`] — the model-based comparators (BBRv1 semantics and
//!   a loss-responsive v2-lite),
//! * [`qcc`] — a quinn-shaped `QuicController` trait plus an adapter
//!   proving SUSS ports to QUIC-native information.
//!
//! Constructors follow a common shape: `New(iw_bytes, mss)`.
//!
//! ## Choosing a controller by name
//!
//! The experiment harness selects controllers with [`make_controller`]:
//!
//! ```
//! use cc_algos::{make_controller, CcKind};
//! let cc = make_controller(CcKind::CubicSuss, 10 * 1448, 1448);
//! assert_eq!(cc.name(), "cubic+suss");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bbr;
pub mod bbr_suss;
pub mod cubic;
pub mod cubic_suss;
pub mod hystart;
pub mod hystartpp;
pub mod qcc;
pub mod reno;

pub use bbr::{Bbr, Bbr2, BbrMode};
pub use bbr_suss::BbrSuss;
pub use cubic::{Cubic, CubicCore};
pub use cubic_suss::CubicSuss;
pub use hystart::HyStart;
pub use hystartpp::{CubicHspp, HystartPP};
pub use qcc::{make_quic_controller, QuicAdapter, QuicController, QuicRtt};
pub use reno::Reno;

use suss_core::SussConfig;
use tcp_sim::cc::CongestionControl;

/// Controller selector for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcKind {
    /// Reno (AIMD baseline).
    Reno,
    /// CUBIC + classic HyStart ("SUSS off").
    Cubic,
    /// CUBIC + SUSS, paper configuration ("SUSS on").
    CubicSuss,
    /// CUBIC + SUSS with a custom lookahead depth (Appendix A).
    CubicSussKmax(u8),
    /// CUBIC + HyStart++ (RFC 9406).
    CubicHspp,
    /// BBRv1.
    Bbr,
    /// BBRv2-lite.
    Bbr2,
    /// BBRv1 with SUSS-predicted STARTUP boosts (the paper's §7 future
    /// work, implemented as an extension).
    BbrSuss,
}

impl CcKind {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            CcKind::Reno => "reno".into(),
            CcKind::Cubic => "cubic".into(),
            CcKind::CubicSuss => "cubic+suss".into(),
            CcKind::CubicSussKmax(k) => format!("cubic+suss(k={k})"),
            CcKind::CubicHspp => "cubic+hspp".into(),
            CcKind::Bbr => "bbr".into(),
            CcKind::Bbr2 => "bbr2".into(),
            CcKind::BbrSuss => "bbr+suss".into(),
        }
    }
}

/// Construct a controller by kind.
pub fn make_controller(kind: CcKind, iw: u64, mss: u64) -> Box<dyn CongestionControl> {
    match kind {
        CcKind::Reno => Box::new(Reno::new(iw, mss)),
        CcKind::Cubic => Box::new(Cubic::new(iw, mss)),
        CcKind::CubicSuss => Box::new(CubicSuss::new(iw, mss, SussConfig::default())),
        CcKind::CubicSussKmax(k) => Box::new(CubicSuss::new(
            iw,
            mss,
            SussConfig::default().with_k_max(u32::from(k)),
        )),
        CcKind::CubicHspp => Box::new(CubicHspp::new(iw, mss)),
        CcKind::Bbr => Box::new(Bbr::new(iw, mss)),
        CcKind::Bbr2 => Box::new(Bbr2::new(iw, mss)),
        CcKind::BbrSuss => Box::new(BbrSuss::new(iw, mss, SussConfig::default())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_produces_each_kind() {
        let kinds = [
            (CcKind::Reno, "reno"),
            (CcKind::Cubic, "cubic"),
            (CcKind::CubicSuss, "cubic+suss"),
            (CcKind::CubicHspp, "cubic+hystart++"),
            (CcKind::Bbr, "bbr"),
            (CcKind::Bbr2, "bbr2"),
            (CcKind::BbrSuss, "bbr+suss"),
        ];
        for (kind, name) in kinds {
            let cc = make_controller(kind, 14_480, 1_448);
            assert_eq!(cc.name(), name);
            assert_eq!(cc.cwnd(), 14_480);
        }
    }

    #[test]
    fn kmax_variant_constructs() {
        let cc = make_controller(CcKind::CubicSussKmax(3), 14_480, 1_448);
        assert_eq!(cc.name(), "cubic+suss");
        assert_eq!(CcKind::CubicSussKmax(3).label(), "cubic+suss(k=3)");
    }
}
