//! Extension: fleet FCT-percentile campaign — heavy-tailed flows at an
//! open-loop offered load share one bottleneck, and the tail of the
//! flow-completion-time distribution is compared across controllers.
//!
//! Sweeps {4G, wired} × load {0.3, 0.6, 0.9} × {CUBIC, CUBIC+SUSS, BBR};
//! every controller within a (scenario, load) pair faces the
//! byte-identical arrival sequence. Percentiles land both in the printed
//! table and as machine-readable annotations in the run manifest.

use suss_bench::BenchCli;

fn main() {
    let o = BenchCli::parse("ext_fleet");
    let n_flows = if o.quick { 150 } else { 2_000 };
    let run = experiments::fleet::fleet_table(n_flows, 1, &o.runner());
    let (spawned, completed, expired) = run.totals();
    println!("fleet: spawned={spawned} completed={completed} expired={expired}");
    o.write_manifest(&run.manifest);
    o.emit(
        "Extension — fleet FCT percentiles by flow-size bucket",
        &run.table,
    );

    // The paper's headline regime: short downloads on the 4G path at
    // moderate load, where slow-start dominates FCT.
    let p99 = |label: &str| {
        run.manifest
            .annotations
            .iter()
            .find(|a| a.label == label)
            .map(|a| a.p99)
    };
    if let (Some(cubic), Some(suss)) = (
        p99("fleet/4G/cubic/load0.6/<=2MB"),
        p99("fleet/4G/cubic+suss/load0.6/<=2MB"),
    ) {
        let verdict = if suss <= cubic { "ok" } else { "regression" };
        println!("suss check: 4G load 0.6 <=2MB p99 cubic={cubic:.3}s suss={suss:.3}s ({verdict})");
    }

    if !run.manifest.all_ok() {
        eprintln!(
            "ext_fleet: {} of {} cells failed; see the manifest for per-cell status",
            run.manifest.cells_failed, run.manifest.total_cells
        );
        std::process::exit(1);
    }
}
