//! Token-bucket packet pacer (re-export).
//!
//! The pacer was born here but is transport-neutral, so the
//! implementation now lives in [`suss_core::pacer`] where both this
//! TCP-like transport and the QUIC-like `quic-sim` transport share the
//! identical token bucket (and `quic-sim` layers its pacing *strategies*
//! on top). This module re-exports it so existing `tcp_sim::pacer` /
//! `tcp_sim::Pacer` call sites keep working unchanged — the move is
//! byte-identical by construction (same code, same arithmetic), which
//! the golden determinism tests assert.

pub use suss_core::pacer::{packet_interval, Nanos, Pacer};
