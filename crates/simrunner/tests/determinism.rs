//! The determinism regression suite: a campaign's aggregated output must be
//! byte-identical no matter how many workers run it, and no matter whether
//! results come from the cache or from live computation.

use simrunner::{Campaign, RunnerOpts};

/// A deliberately seed-sensitive "simulation": a small xorshift stream
/// reduced to a float, with per-cell cost that varies so that different
/// worker counts interleave completions differently.
fn fake_sim(seed: u64, rounds: u64) -> f64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut acc = 0u64;
    for _ in 0..rounds {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x);
    }
    (acc >> 11) as f64 / (1u64 << 53) as f64
}

fn campaign() -> Campaign {
    let mut c = Campaign::new("determinism-it", "v1");
    for scenario in ["a", "b", "c", "d"] {
        for seed in 0..8u64 {
            c.cell(
                format!("{scenario}/seed{seed}"),
                format!("scenario={scenario} seed={seed}"),
                seed,
            );
        }
    }
    c
}

/// Render results the way an experiment writer would: a stable text report.
fn render(results: &[f64]) -> String {
    results
        .iter()
        .enumerate()
        .map(|(i, v)| format!("{i} {v:.17e}\n"))
        .collect()
}

#[test]
fn one_vs_many_workers_byte_identical() {
    let c = campaign();
    let run = |workers: usize| {
        let out = c.run(
            &RunnerOpts::default().with_workers(workers).executor(),
            |cell| {
                // Uneven cost: cells finish out of order on multi-worker runs.
                fake_sim(cell.seed, 1_000 + (cell.index as u64 % 5) * 7_000)
            },
        );
        render(&out.expect_all())
    };
    let serial = run(1);
    for workers in [2, 4, 8] {
        assert_eq!(
            serial,
            run(workers),
            "aggregated output must not depend on worker count ({workers})"
        );
    }
}

#[test]
fn cached_rerun_is_byte_identical_and_mostly_hits() {
    let dir = tempdir("simrunner-det-cache");
    let c = campaign();
    let opts = RunnerOpts::default().with_workers(4).with_cache(&dir);

    let cold = c.run(&opts.executor(), |cell| fake_sim(cell.seed, 5_000));
    assert_eq!(cold.manifest.cache_hits, 0);
    assert_eq!(cold.manifest.cache_misses, c.len());

    let warm = c.run(&opts.executor(), |cell| fake_sim(cell.seed, 5_000));
    assert!(
        warm.manifest.hit_rate() >= 0.9,
        "second run should be >=90% cached, got {:.0}%",
        warm.manifest.hit_rate() * 100.0
    );
    assert_eq!(
        render(&cold.expect_all()),
        render(&warm.expect_all()),
        "cache round-trip altered results"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn force_cold_recomputes_but_matches() {
    let dir = tempdir("simrunner-det-cold");
    let c = campaign();
    let opts = RunnerOpts::default().with_workers(2).with_cache(&dir);
    let first = c.run(&opts.executor(), |cell| fake_sim(cell.seed, 2_000));

    let mut cold_opts = opts.clone();
    cold_opts.force_cold = true;
    let second = c.run(&cold_opts.executor(), |cell| fake_sim(cell.seed, 2_000));
    assert_eq!(second.manifest.cache_hits, 0, "force_cold must not read");
    assert_eq!(render(&first.expect_all()), render(&second.expect_all()));

    std::fs::remove_dir_all(&dir).ok();
}

/// Manifest cell records stay in campaign order with the right labels, so
/// downstream tooling can join them against rendered results by line.
#[test]
fn manifest_records_follow_campaign_order() {
    let c = campaign();
    let out = c.run(&RunnerOpts::default().with_workers(3).executor(), |cell| {
        fake_sim(cell.seed, 1_000)
    });
    assert_eq!(out.manifest.cells.len(), c.len());
    for (i, rec) in out.manifest.cells.iter().enumerate() {
        assert_eq!(rec.index, i);
        assert_eq!(rec.label, c.cells[i].label);
        assert_eq!(rec.seed, c.cells[i].seed);
    }
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
