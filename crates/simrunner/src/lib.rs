//! # simrunner — parallel experiment-campaign orchestration
//!
//! Every evaluation artifact in the paper is a grid — scenarios × flow
//! sizes × congestion controllers × seeds — and each grid cell is one
//! deterministic, independent simulation. This crate owns running such
//! grids fast:
//!
//! * [`Campaign`] expands an experiment into [`Cell`]s — one simulation
//!   each, identified by a label, a canonical parameter string, and a
//!   seed;
//! * [`Campaign::run`] shards cells across a `std::thread` worker pool
//!   fed by a bounded queue ([`pool`]). Each cell is seeded
//!   independently and results are committed by cell index, so the
//!   aggregated output is **byte-identical regardless of worker count or
//!   scheduling order** — the core invariant, enforced by a regression
//!   test;
//! * [`Campaign::run_resilient`] adds crash-proofing for chaos-style
//!   campaigns: per-cell panic isolation with bounded retries, a
//!   wall-clock budget plus a simulator-progress watchdog that abandons
//!   livelocked cells, and graceful degradation — the campaign always
//!   completes, failed cells come back as `None`, and their
//!   [`CellStatus`] and terminal error land in the manifest. Failures
//!   are never cached, so a re-run against the warm cache re-executes
//!   exactly the failed cells;
//! * results are memoized in a content-addressed cache ([`cache`]) keyed
//!   by a stable hash of (experiment id, version tag, cell params, seed),
//!   so re-running a campaign after touching one scenario recomputes only
//!   that scenario's cells;
//! * every run produces a serde-derived [`RunManifest`] (workers, wall
//!   time, cache hits/misses, per-cell timings) that the figure binaries
//!   write next to their `results/*.txt` artifacts;
//! * progress (cells done / total, cells/sec, ETA) streams to stderr
//!   ([`progress`]).
//!
//! ## Example
//!
//! ```
//! use simrunner::{Campaign, RunnerOpts};
//!
//! let mut c = Campaign::new("demo", "v1");
//! for seed in 0..8 {
//!     c.cell(format!("cell-{seed}"), format!("x={seed}"), seed);
//! }
//! let out = c.run(&RunnerOpts::default(), |cell| cell.seed as f64 * 2.0);
//! assert_eq!(out.results[3], 6.0);
//! assert_eq!(out.manifest.total_cells, 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod campaign;
pub mod manifest;
pub mod pool;
pub mod progress;

pub use cache::{sweep_lru, Cache, CellIdentity, SweepStats};
pub use campaign::{parse_bytes, Campaign, Cell, ResilientOutcome, RunOutcome, RunnerOpts};
pub use manifest::{CellRecord, CellStatus, FctAnnotation, RunManifest};

/// FNV-1a 64-bit hash over a byte string — the stable content hash behind
/// cache keys. Stable across platforms, processes, and releases (never
/// replace with `DefaultHasher`, whose output is randomized per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Pinned values: changing the hash silently invalidates every
        // cache on disk, so make that an explicit decision.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
