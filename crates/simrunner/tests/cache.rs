//! Result-cache integration tests: identity discrimination and resilience
//! against damaged entries.

use simrunner::{Cache, CellIdentity};
use std::fs;
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn ident<'a>(params: &'a str, seed: u64, version: &'a str) -> CellIdentity<'a> {
    CellIdentity {
        experiment: "cache-it",
        version,
        params,
        seed,
    }
}

#[test]
fn hit_on_identical_params() {
    let dir = tempdir("simrunner-cache-hit");
    let cache = Cache::open(&dir, "cache-it").unwrap();
    let id = ident("size=2MB rtt=188ms", 7, "v1");
    cache.store(&id, &1.25f64).unwrap();
    assert_eq!(cache.load::<f64>(&id), Some(1.25));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn miss_on_changed_seed_param_or_version() {
    let dir = tempdir("simrunner-cache-miss");
    let cache = Cache::open(&dir, "cache-it").unwrap();
    cache.store(&ident("size=2MB", 7, "v1"), &1.25f64).unwrap();

    assert_eq!(
        cache.load::<f64>(&ident("size=2MB", 8, "v1")),
        None,
        "seed change must miss"
    );
    assert_eq!(
        cache.load::<f64>(&ident("size=4MB", 7, "v1")),
        None,
        "param change must miss"
    );
    assert_eq!(
        cache.load::<f64>(&ident("size=2MB", 7, "v2")),
        None,
        "version change must miss"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_entry_is_a_miss_and_recoverable() {
    let dir = tempdir("simrunner-cache-corrupt");
    let cache = Cache::open(&dir, "cache-it").unwrap();
    let id = ident("size=2MB", 7, "v1");
    cache.store(&id, &1.25f64).unwrap();
    let entry = cache.entry_path(&id);
    assert!(entry.exists());

    // Truncate mid-JSON: load must degrade to a miss, not a panic.
    let full = fs::read_to_string(&entry).unwrap();
    fs::write(&entry, &full[..full.len() / 2]).unwrap();
    assert_eq!(cache.load::<f64>(&id), None, "truncated entry must miss");

    // Garbage bytes: same story.
    fs::write(&entry, b"\x00\xff not json at all").unwrap();
    assert_eq!(cache.load::<f64>(&id), None, "garbage entry must miss");

    // A store over the damaged entry heals it.
    cache.store(&id, &2.5f64).unwrap();
    assert_eq!(cache.load::<f64>(&id), Some(2.5));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn type_confusion_is_a_miss() {
    let dir = tempdir("simrunner-cache-type");
    let cache = Cache::open(&dir, "cache-it").unwrap();
    let id = ident("size=2MB", 7, "v1");
    cache.store(&id, &vec![1.0f64, 2.0]).unwrap();
    // Reading the entry back as a different shape must fail cleanly.
    assert_eq!(cache.load::<f64>(&id), None);
    fs::remove_dir_all(&dir).ok();
}
