//! Executors: the pluggable engines behind [`Campaign::run`].
//!
//! A [`Campaign`] is pure data; an [`Executor`] decides *how* its cells
//! get computed. Three engines ship here, all committing results by cell
//! index so the output is byte-identical across engines:
//!
//! * [`PoolExecutor`] — the deterministic token-tracked thread pool with
//!   panic isolation, bounded retries, wall-clock and progress-stall
//!   watchdogs, and flight-recorder crash dumps (the default);
//! * [`WorkStealingExecutor`] — workers pull cells from per-worker
//!   deques and steal from idle neighbours' backs; retries run inline on
//!   the worker, under the same wall-clock/stall watchdog as the pool;
//! * [`ShardWorker`] / [`ShardCoordinator`] / [`ShardMerge`] — the
//!   distributed path. A worker computes only the cells its shard owns
//!   (round-robin by index, see [`ShardInfo::owns`]) against the shared
//!   cache and writes a shard manifest; the coordinator runs N shards
//!   (child processes or in-process), merges their manifests with
//!   [`RunManifest::merge_shards`], reloads the results from the shared
//!   cache, and returns a report indistinguishable from a single-process
//!   run — same results, same manifest fingerprint.
//!
//! The coordinator is self-healing: each shard child writes a heartbeat
//! file ticked from its progress epoch, a stall-aware [`LeaseClock`]
//! declares shards dead (lease expiry or abnormal exit), dead shards are
//! restarted on a bounded budget with linear backoff, and whatever still
//! has no usable shard manifest at merge time has its remaining cells
//! reassigned inline — so a SIGKILLed shard costs only its unfinished
//! cells, never the campaign.
//!
//! [`RunnerOpts::executor`](crate::RunnerOpts::executor) builds the
//! engine selected by [`ExecSpec`](crate::ExecSpec), so call sites
//! uniformly write `campaign.run(&opts.executor(), f)`.

use crate::campaign::{
    dump_flightrec, panic_message, run_bracketed, Campaign, CampaignReport, Cell, CellTelemetry,
    ExecSpec, FailurePolicy, ManifestParts, RunnerOpts,
};
use crate::manifest::{
    shard_heartbeat_path, shard_manifest_path, CellRecord, CellStatus, RunManifest, ShardInfo,
};
use crate::pool::{BoundedQueue, StealQueues};
use crate::progress::{read_heartbeat, Heartbeat, Progress};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Watchdog/retry scheduling granularity of the pool executor.
const TICK: Duration = Duration::from_millis(20);
/// Backoff unit: attempt `k` waits `k × RETRY_BACKOFF` before re-running.
const RETRY_BACKOFF: Duration = Duration::from_millis(25);
/// Poll interval of the coordinator's shard-child monitor.
const SHARD_POLL: Duration = Duration::from_millis(40);
/// Backoff unit for dead-shard restarts: restart `r` of a shard waits
/// `r × SHARD_RESTART_BACKOFF` before respawning.
const SHARD_RESTART_BACKOFF: Duration = Duration::from_millis(200);
/// Exit code of a shard child whose cells failed (manifest still written).
pub const SHARD_FAILED_EXIT: i32 = 3;

/// An execution engine for campaigns. Implementations must commit
/// results in campaign (cell-index) order and fill a [`RunManifest`]
/// describing the run.
pub trait Executor {
    /// Short engine name for manifests (`pool`, `steal`, `shard 0/2`, …).
    fn label(&self) -> String;

    /// Execute `campaign`, computing each cell with `f`.
    fn execute<T, F>(&self, campaign: &Campaign, f: F) -> CampaignReport<T>
    where
        T: Serialize + Deserialize + Send + 'static,
        F: Fn(&Cell) -> T + Send + Sync + 'static;
}

// ---------------------------------------------------------------------------
// Shared phases: cache serve, manifest finish
// ---------------------------------------------------------------------------

/// State threaded through an executor's phases.
struct Prepared<T> {
    started: Instant,
    workers: usize,
    cache: Option<crate::cache::Cache>,
    results: Vec<Option<T>>,
    records: Vec<CellRecord>,
    /// Cell indices still to compute (owned, not served from cache).
    pending: Vec<usize>,
    cache_hits: usize,
    skipped: usize,
    progress: Progress,
    /// The shard this run covers, when any.
    shard: Option<ShardInfo>,
    /// Liveness publisher for shard runs (see [`Heartbeat`]); `None` for
    /// unsharded executors.
    heartbeat: Option<Heartbeat>,
}

/// Failure/observability tallies from an executor's compute phase.
#[derive(Default)]
struct Tallies {
    failed: usize,
    retries: u64,
    timeouts: u64,
    prof: simtrace::ProfSnapshot,
    scopes: Vec<simtrace::ScopeAnnotation>,
}

/// Phase 1, common to all local executors: mark unowned cells skipped and
/// serve owned cells from the cache (main thread: cheap).
fn prepare<T: Deserialize>(
    campaign: &Campaign,
    opts: &RunnerOpts,
    shard: Option<ShardInfo>,
) -> Prepared<T> {
    let started = Instant::now();
    let workers = opts.resolved_workers();
    let cache = campaign.open_cache(opts);
    let n = campaign.cells.len();
    let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut records = campaign.blank_records();
    let owns = |i: usize| shard.is_none_or(|s| s.owns(i));
    let owned_total = (0..n).filter(|&i| owns(i)).count();
    let mut progress = Progress::new(&campaign.experiment, owned_total, opts.progress);
    // Publish liveness as early as possible: the coordinator's lease
    // starts counting at spawn time.
    let mut heartbeat = shard.map(|s| {
        Heartbeat::new(shard_heartbeat_path(
            &opts.stem_for(&campaign.experiment),
            s.index,
            s.total,
        ))
    });
    let mut pending: Vec<usize> = Vec::new();
    let mut skipped = 0usize;
    for cell in &campaign.cells {
        if !owns(cell.index) {
            records[cell.index].status = CellStatus::Skipped;
            skipped += 1;
            continue;
        }
        let hit = if opts.force_cold {
            None
        } else {
            cache
                .as_ref()
                .and_then(|c| c.load::<T>(&campaign.identity(cell)))
        };
        match hit {
            Some(v) => {
                results[cell.index] = Some(v);
                records[cell.index].cached = true;
                progress.tick(true);
            }
            None => pending.push(cell.index),
        }
    }
    let cache_hits = owned_total - pending.len();
    if let Some(hb) = heartbeat.as_mut() {
        hb.beat(progress.done() as u64);
    }
    Prepared {
        started,
        workers,
        cache,
        results,
        records,
        pending,
        cache_hits,
        skipped,
        progress,
        shard,
        heartbeat,
    }
}

/// Final phase, common to all local executors: sweep the cache, assemble
/// the manifest (with results digest and fingerprint), print the summary,
/// and apply the failure policy.
fn finish<T: Serialize>(
    campaign: &Campaign,
    opts: &RunnerOpts,
    exec_label: String,
    shard: Option<ShardInfo>,
    prep: Prepared<T>,
    tallies: Tallies,
    raise: bool,
) -> CampaignReport<T> {
    prep.progress.finish();
    campaign.sweep_cache(opts);
    let quarantined = prep
        .cache
        .as_ref()
        .map(|c| c.quarantined_count())
        .unwrap_or(0);
    let digest = results_digest_of(&prep.results, &prep.records);
    let mut manifest = campaign.assemble_manifest(ManifestParts {
        executor: exec_label,
        shard,
        workers: prep.workers,
        cache_hits: prep.cache_hits,
        cells_skipped: prep.skipped,
        started: prep.started,
        records: prep.records,
        cells_failed: tallies.failed,
        cell_retries: tallies.retries,
        cell_timeouts: tallies.timeouts,
        cache_quarantined: quarantined,
        results_digest: digest,
        prof: tallies.prof,
        scope_annotations: tallies.scopes,
    });
    manifest.fingerprint = manifest.compute_fingerprint();
    if opts.progress {
        eprint!("{}", manifest.summary());
    }
    if raise {
        raise_first_failure(&manifest);
    }
    CampaignReport {
        results: prep.results,
        manifest,
    }
}

/// Re-raise the first terminal cell failure with the old single-process
/// message shape ("campaign 'x' cell 'y' panicked: boom").
fn raise_first_failure(m: &RunManifest) {
    if let Some(rec) = m
        .cells
        .iter()
        .find(|r| !r.status.succeeded() && r.status != CellStatus::Skipped)
    {
        let verb = match rec.status {
            CellStatus::TimedOut => "timed out",
            _ => "panicked",
        };
        panic!(
            "campaign '{}' cell '{}' {verb}: {}",
            m.experiment, rec.label, rec.error
        );
    }
}

/// FNV-1a digest over the results present, keyed by cell index. Failed
/// cells (a `None` whose record is not `Skipped`) make the digest
/// meaningless, so it comes back empty. The serde shim's f64 rendering
/// round-trips exactly, so a digest over re-serialized cached values
/// equals the digest over freshly computed ones.
fn results_digest_of<T: Serialize>(results: &[Option<T>], records: &[CellRecord]) -> String {
    let mut canon = String::new();
    for (i, r) in results.iter().enumerate() {
        match r {
            Some(v) => {
                canon.push_str(&i.to_string());
                canon.push('\0');
                canon.push_str(&serde::to_string(v));
                canon.push('\n');
            }
            None if records[i].status == CellStatus::Skipped => {}
            None => return String::new(),
        }
    }
    format!("{:016x}", crate::fnv1a64(canon.as_bytes()))
}

// ---------------------------------------------------------------------------
// Pool executor (and the shard worker's compute core)
// ---------------------------------------------------------------------------

/// The deterministic token-tracked thread pool: detached workers under a
/// watchdog, per-cell panic isolation with bounded retries (linear
/// backoff), wall-clock and progress-stall abandonment, flight-recorder
/// dumps on terminal failure. Results commit by cell index on the main
/// thread.
///
/// Detached (non-scoped) threads are what make abandonment possible: a
/// hung cell's thread is left behind (it dies with the process) while a
/// replacement worker keeps the pool at full strength — hence the
/// `'static` bounds on [`Executor::execute`].
#[derive(Debug, Clone)]
pub struct PoolExecutor {
    /// Execution options.
    pub opts: RunnerOpts,
}

impl Executor for PoolExecutor {
    fn label(&self) -> String {
        "pool".into()
    }

    fn execute<T, F>(&self, campaign: &Campaign, f: F) -> CampaignReport<T>
    where
        T: Serialize + Deserialize + Send + 'static,
        F: Fn(&Cell) -> T + Send + Sync + 'static,
    {
        let mut prep = prepare::<T>(campaign, &self.opts, None);
        let tallies = run_pool_phase(campaign, &self.opts, &mut prep, f);
        let raise = self.opts.on_failure == FailurePolicy::Raise;
        finish(
            campaign,
            &self.opts,
            self.label(),
            None,
            prep,
            tallies,
            raise,
        )
    }
}

/// Phase 2 of the pool executor and shard worker: compute `prep.pending`
/// on detached workers under the watchdog loop.
fn run_pool_phase<T, F>(
    campaign: &Campaign,
    opts: &RunnerOpts,
    prep: &mut Prepared<T>,
    f: F,
) -> Tallies
where
    T: Serialize + Deserialize + Send + 'static,
    F: Fn(&Cell) -> T + Send + Sync + 'static,
{
    let mut tallies = Tallies::default();
    if prep.pending.is_empty() {
        return tallies;
    }
    let n = campaign.cells.len();
    // `SUSS_CHAOS_KILL_SHARD` propagates to every process in the tree
    // (children inherit the environment); arm it only in a real shard
    // child (`shard_exit`) whose index matches, so the coordinator and
    // the inline recovery pass never kill themselves.
    let chaos_kill_after = match (opts.chaos_kill_shard, prep.shard) {
        (Some((k, after)), Some(s)) if opts.shard_exit && s.index == k => Some(after),
        _ => None,
    };
    let shard = prep.shard;
    let results = &mut prep.results;
    let records = &mut prep.records;
    let cache = &prep.cache;
    let progress = &mut prep.progress;
    let heartbeat = &mut prep.heartbeat;
    // The heartbeat epoch is `cells done + hb_base + Σ live in-flight
    // sinks`: hb_base folds in each attempt's final sink reading when it
    // leaves the in-flight map, keeping the epoch monotone as sinks come
    // and go.
    let mut hb_base = 0u64;
    let mut computed = 0u64;

    struct Dispatch {
        token: u64,
        index: usize,
        sink: Arc<AtomicU64>,
        recorder: Option<simtrace::FlightRecorder>,
    }
    enum Msg<T> {
        Started {
            token: u64,
        },
        Done {
            token: u64,
            outcome: Result<(T, CellTelemetry), String>,
        },
    }
    struct InFlight {
        index: usize,
        sink: Arc<AtomicU64>,
        recorder: Option<simtrace::FlightRecorder>,
        started: Option<Instant>,
        progress_seen: u64,
        progress_at: Instant,
    }

    let cells = Arc::new(campaign.cells.clone());
    let f = Arc::new(f);
    // Effectively unbounded: tokens are tiny, and the watchdog must never
    // block on a full queue.
    let work: Arc<BoundedQueue<Dispatch>> = Arc::new(BoundedQueue::new(usize::MAX));
    let (tx, rx) = mpsc::channel::<Msg<T>>();
    let spawn_worker = {
        let work = Arc::clone(&work);
        let cells = Arc::clone(&cells);
        let f = Arc::clone(&f);
        let tx = tx.clone();
        let profile = opts.profile;
        move || {
            let work = Arc::clone(&work);
            let cells = Arc::clone(&cells);
            let f = Arc::clone(&f);
            let tx = tx.clone();
            thread::spawn(move || {
                while let Some(d) = work.pop() {
                    // The per-cell progress sink lets the main thread
                    // distinguish "slow but advancing" from "livelocked"
                    // without touching the simulation; the flight
                    // recorder is the dispatching thread's handle, so the
                    // ring stays readable even if this thread hangs.
                    simtrace::runtime::set_progress_sink(Some(Arc::clone(&d.sink)));
                    simtrace::flightrec::install(d.recorder.clone());
                    if tx.send(Msg::Started { token: d.token }).is_err() {
                        break;
                    }
                    let (out, tel) = run_bracketed(profile, || f(&cells[d.index]));
                    simtrace::flightrec::install(None);
                    simtrace::runtime::set_progress_sink(None);
                    let outcome = match out {
                        Ok(v) => Ok((v, tel)),
                        Err(p) => Err(panic_message(&*p)),
                    };
                    if tx
                        .send(Msg::Done {
                            token: d.token,
                            outcome,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
    };
    for _ in 0..prep.workers.min(prep.pending.len()) {
        spawn_worker();
    }

    let mut inflight: HashMap<u64, InFlight> = HashMap::new();
    let mut attempts: Vec<u32> = vec![0; n];
    let mut next_token = 0u64;
    let mut delayed: Vec<(Instant, usize)> = Vec::new();
    let mut outstanding = prep.pending.len();
    // Not a closure: it would hold `records`/`next_token` borrowed across
    // the whole loop, which also mutates them.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        index: usize,
        work: &BoundedQueue<Dispatch>,
        next_token: &mut u64,
        attempts: &mut [u32],
        records: &mut [CellRecord],
        inflight: &mut HashMap<u64, InFlight>,
        flightrec: bool,
    ) {
        let token = *next_token;
        *next_token += 1;
        attempts[index] += 1;
        records[index].attempts = attempts[index];
        let sink = Arc::new(AtomicU64::new(0));
        let recorder = flightrec.then(|| {
            let r = simtrace::FlightRecorder::new(simtrace::flightrec::DEFAULT_CAPACITY);
            // Seed the ring so a cell that dies before producing any
            // trace record (e.g. an injected panic at dispatch) still
            // leaves a parseable, non-empty dump.
            r.push(simtrace::TraceRecord::metric(
                0,
                simtrace::kind::COUNTER,
                "runner.dispatch",
                u64::from(attempts[index]),
            ));
            r
        });
        inflight.insert(
            token,
            InFlight {
                index,
                sink: Arc::clone(&sink),
                recorder: recorder.clone(),
                started: None,
                progress_seen: 0,
                progress_at: Instant::now(),
            },
        );
        work.push(Dispatch {
            token,
            index,
            sink,
            recorder,
        });
    }
    let flightrec = opts.flightrec_dir.is_some();
    for &idx in &prep.pending {
        dispatch(
            idx,
            &work,
            &mut next_token,
            &mut attempts,
            records,
            &mut inflight,
            flightrec,
        );
    }

    while outstanding > 0 {
        // Release retries whose backoff has elapsed.
        let now = Instant::now();
        let mut i = 0;
        while i < delayed.len() {
            if delayed[i].0 <= now {
                let (_, idx) = delayed.swap_remove(i);
                dispatch(
                    idx,
                    &work,
                    &mut next_token,
                    &mut attempts,
                    records,
                    &mut inflight,
                    flightrec,
                );
            } else {
                i += 1;
            }
        }

        match rx.recv_timeout(TICK) {
            Ok(Msg::Started { token }) => {
                if let Some(fl) = inflight.get_mut(&token) {
                    let now = Instant::now();
                    fl.started = Some(now);
                    fl.progress_at = now;
                    fl.progress_seen = fl.sink.load(Ordering::Relaxed);
                }
            }
            Ok(Msg::Done { token, outcome }) => {
                // An unknown token is a late result from an attempt the
                // watchdog already abandoned: the cell's fate is sealed,
                // drop it (and never cache it).
                let Some(fl) = inflight.remove(&token) else {
                    continue;
                };
                hb_base += fl.sink.load(Ordering::Relaxed);
                let idx = fl.index;
                match outcome {
                    Ok((v, tel)) => {
                        if let Some(c) = cache {
                            // A failed store only costs a future miss.
                            let _ = c.store(&campaign.identity(&campaign.cells[idx]), &v);
                        }
                        records[idx].wall_ms = tel.wall_ms;
                        records[idx].events = tel.events;
                        tallies.prof.merge(&tel.prof);
                        tallies.scopes.extend(tel.scopes);
                        records[idx].status = if attempts[idx] > 1 {
                            CellStatus::Retried
                        } else {
                            CellStatus::Ok
                        };
                        results[idx] = Some(v);
                        outstanding -= 1;
                        progress.tick(false);
                        computed += 1;
                        if chaos_kill_after.is_some_and(|after| computed >= after) {
                            chaos_sigkill_self(shard, computed);
                        }
                    }
                    Err(msg) => {
                        if attempts[idx] <= opts.cell_retries {
                            tallies.retries += 1;
                            let backoff = RETRY_BACKOFF * attempts[idx];
                            delayed.push((Instant::now() + backoff, idx));
                        } else {
                            records[idx].status = CellStatus::Panicked;
                            records[idx].error = msg;
                            // Terminal failure: dump the black box.
                            if let (Some(dir), Some(rec)) =
                                (opts.flightrec_dir.as_deref(), fl.recorder.as_ref())
                            {
                                if let Some(path) =
                                    dump_flightrec(dir, &campaign.cells[idx].label, rec)
                                {
                                    records[idx].flightrec = path;
                                }
                            }
                            tallies.failed += 1;
                            outstanding -= 1;
                            progress.tick(false);
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }

        // Watchdog: abandon cells over the wall budget or stalled.
        let now = Instant::now();
        let mut expired: Vec<(u64, String)> = Vec::new();
        for (&token, fl) in inflight.iter_mut() {
            let Some(cell_started) = fl.started else {
                continue;
            };
            if let Some(limit) = opts.cell_timeout {
                if now.duration_since(cell_started) > limit {
                    expired.push((token, format!("wall-clock budget exceeded ({limit:?})")));
                    continue;
                }
            }
            if let Some(stall) = opts.stall_timeout {
                let cur = fl.sink.load(Ordering::Relaxed);
                if cur != fl.progress_seen {
                    fl.progress_seen = cur;
                    fl.progress_at = now;
                } else if now.duration_since(fl.progress_at) > stall {
                    expired.push((token, format!("no simulator progress for {stall:?}")));
                }
            }
        }
        for (token, msg) in expired {
            let Some(fl) = inflight.remove(&token) else {
                continue;
            };
            hb_base += fl.sink.load(Ordering::Relaxed);
            records[fl.index].status = CellStatus::TimedOut;
            records[fl.index].error = msg;
            // The hung worker can never drain its own ring; the
            // dispatching thread's clone reads it from outside.
            if let (Some(dir), Some(rec)) = (opts.flightrec_dir.as_deref(), fl.recorder.as_ref()) {
                if let Some(path) = dump_flightrec(dir, &campaign.cells[fl.index].label, rec) {
                    records[fl.index].flightrec = path;
                }
            }
            tallies.timeouts += 1;
            tallies.failed += 1;
            outstanding -= 1;
            progress.tick(false);
            // The abandoned worker thread is stuck in the cell; restore
            // pool capacity with a fresh thread.
            spawn_worker();
        }

        if let Some(hb) = heartbeat.as_mut() {
            let live: u64 = inflight
                .values()
                .map(|fl| fl.sink.load(Ordering::Relaxed))
                .sum();
            hb.beat(progress.done() as u64 + hb_base + live);
        }
    }
    work.close();
    drop(tx);

    // Defensive: if the channel disconnected early (no live workers),
    // account for whatever never resolved.
    for &idx in &prep.pending {
        if results[idx].is_none() && records[idx].status.succeeded() {
            records[idx].status = CellStatus::Panicked;
            records[idx].error = "worker pool disconnected".to_string();
            tallies.failed += 1;
        }
    }
    tallies
}

// ---------------------------------------------------------------------------
// Work-stealing executor
// ---------------------------------------------------------------------------

/// The work-stealing local executor: cells are preloaded round-robin
/// into per-worker deques ([`StealQueues`]); a worker drains its own
/// deque front-first and steals from the back of idle neighbours', so no
/// worker idles while cells remain. Panics retry inline on the worker
/// with the same linear backoff as the pool. Results still commit by
/// cell index on the main thread, so output is byte-identical to the
/// pool executor.
///
/// Workers are detached threads under the same wall-clock/stall watchdog
/// as the pool: a cell over budget is recorded
/// [`TimedOut`](CellStatus::TimedOut), its thread abandoned (a detached
/// sentinel that dies with the process), and a replacement worker takes
/// over the deque. Flight-recorder dumps are still pool-only.
#[derive(Debug, Clone)]
pub struct WorkStealingExecutor {
    /// Execution options.
    pub opts: RunnerOpts,
}

impl Executor for WorkStealingExecutor {
    fn label(&self) -> String {
        "steal".into()
    }

    fn execute<T, F>(&self, campaign: &Campaign, f: F) -> CampaignReport<T>
    where
        T: Serialize + Deserialize + Send + 'static,
        F: Fn(&Cell) -> T + Send + Sync + 'static,
    {
        let mut prep = prepare::<T>(campaign, &self.opts, None);
        let tallies = run_steal_phase(campaign, &self.opts, &mut prep, f);
        let raise = self.opts.on_failure == FailurePolicy::Raise;
        finish(
            campaign,
            &self.opts,
            self.label(),
            None,
            prep,
            tallies,
            raise,
        )
    }
}

/// Phase 2 of the work-stealing executor: detached workers over
/// [`StealQueues`], inline retries on the worker, in-order commit on the
/// main thread — under the same wall-clock/stall watchdog as the pool.
/// Abandoning a hung cell leaves its thread behind as a detached
/// sentinel (it dies with the process) and spawns a replacement worker
/// on the same deque, so the remaining cells keep flowing.
fn run_steal_phase<T, F>(
    campaign: &Campaign,
    opts: &RunnerOpts,
    prep: &mut Prepared<T>,
    f: F,
) -> Tallies
where
    T: Serialize + Deserialize + Send + 'static,
    F: Fn(&Cell) -> T + Send + Sync + 'static,
{
    let mut tallies = Tallies::default();
    if prep.pending.is_empty() {
        return tallies;
    }
    if opts.flightrec_dir.is_some() {
        eprintln!(
            "warning: the work-stealing executor does not dump flight \
             records (use the pool executor)"
        );
    }
    let workers = prep.workers.min(prep.pending.len());
    let queues = Arc::new(StealQueues::new(workers, prep.pending.iter().copied()));
    let cells = Arc::new(campaign.cells.clone());
    let f = Arc::new(f);

    enum Msg<T> {
        Started {
            token: u64,
            worker: usize,
            index: usize,
            attempt: u32,
            sink: Arc<AtomicU64>,
        },
        Done {
            token: u64,
            outcome: Result<(T, CellTelemetry), String>,
            attempts: u32,
        },
    }
    struct InFlight {
        worker: usize,
        index: usize,
        sink: Arc<AtomicU64>,
        started: Instant,
        progress_seen: u64,
        progress_at: Instant,
    }

    let (tx, rx) = mpsc::channel::<Msg<T>>();
    // One token per cell claim: lets the main thread drop messages from
    // attempts the watchdog already abandoned.
    let tokens = Arc::new(AtomicU64::new(0));
    let spawn_worker = {
        let queues = Arc::clone(&queues);
        let cells = Arc::clone(&cells);
        let f = Arc::clone(&f);
        let tx = tx.clone();
        let tokens = Arc::clone(&tokens);
        let profile = opts.profile;
        let retries = opts.cell_retries;
        move |w: usize| {
            let queues = Arc::clone(&queues);
            let cells = Arc::clone(&cells);
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let tokens = Arc::clone(&tokens);
            thread::spawn(move || {
                while let Some(idx) = queues.take(w) {
                    let token = tokens.fetch_add(1, Ordering::Relaxed);
                    let mut attempt = 0u32;
                    loop {
                        attempt += 1;
                        let sink = Arc::new(AtomicU64::new(0));
                        simtrace::runtime::set_progress_sink(Some(Arc::clone(&sink)));
                        if tx
                            .send(Msg::Started {
                                token,
                                worker: w,
                                index: idx,
                                attempt,
                                sink,
                            })
                            .is_err()
                        {
                            return;
                        }
                        let (out, tel) = run_bracketed(profile, || f(&cells[idx]));
                        simtrace::runtime::set_progress_sink(None);
                        match out {
                            Ok(v) => {
                                let _ = tx.send(Msg::Done {
                                    token,
                                    outcome: Ok((v, tel)),
                                    attempts: attempt,
                                });
                                break;
                            }
                            Err(p) => {
                                let msg = panic_message(&*p);
                                if attempt > retries {
                                    let _ = tx.send(Msg::Done {
                                        token,
                                        outcome: Err(msg),
                                        attempts: attempt,
                                    });
                                    break;
                                }
                            }
                        }
                        thread::sleep(RETRY_BACKOFF * attempt);
                    }
                }
            });
        }
    };
    for w in 0..workers {
        spawn_worker(w);
    }

    let results = &mut prep.results;
    let records = &mut prep.records;
    let cache = &prep.cache;
    let progress = &mut prep.progress;
    let mut inflight: HashMap<u64, InFlight> = HashMap::new();
    let mut abandoned: HashSet<u64> = HashSet::new();
    let mut outstanding = prep.pending.len();
    while outstanding > 0 {
        match rx.recv_timeout(TICK) {
            Ok(Msg::Started {
                token,
                worker,
                index,
                attempt,
                sink,
            }) => {
                // A Started from an expired token is a retry of an
                // abandoned attempt: the cell's fate is already sealed.
                if abandoned.contains(&token) {
                    continue;
                }
                records[index].attempts = attempt;
                if attempt > 1 {
                    tallies.retries += 1;
                }
                let now = Instant::now();
                inflight.insert(
                    token,
                    InFlight {
                        worker,
                        index,
                        sink,
                        started: now,
                        progress_seen: 0,
                        progress_at: now,
                    },
                );
            }
            Ok(Msg::Done {
                token,
                outcome,
                attempts,
            }) => {
                // An unknown token is a late result from an abandoned
                // attempt: drop it (and never cache it).
                let Some(fl) = inflight.remove(&token) else {
                    continue;
                };
                let idx = fl.index;
                match outcome {
                    Ok((v, tel)) => {
                        if let Some(c) = cache {
                            let _ = c.store(&campaign.identity(&campaign.cells[idx]), &v);
                        }
                        records[idx].wall_ms = tel.wall_ms;
                        records[idx].events = tel.events;
                        records[idx].status = if attempts > 1 {
                            CellStatus::Retried
                        } else {
                            CellStatus::Ok
                        };
                        tallies.prof.merge(&tel.prof);
                        tallies.scopes.extend(tel.scopes);
                        results[idx] = Some(v);
                    }
                    Err(msg) => {
                        records[idx].status = CellStatus::Panicked;
                        records[idx].error = msg;
                        tallies.failed += 1;
                    }
                }
                outstanding -= 1;
                progress.tick(false);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }

        // Watchdog: identical policy to the pool executor.
        let now = Instant::now();
        let mut expired: Vec<(u64, String)> = Vec::new();
        for (&token, fl) in inflight.iter_mut() {
            if let Some(limit) = opts.cell_timeout {
                if now.duration_since(fl.started) > limit {
                    expired.push((token, format!("wall-clock budget exceeded ({limit:?})")));
                    continue;
                }
            }
            if let Some(stall) = opts.stall_timeout {
                let cur = fl.sink.load(Ordering::Relaxed);
                if cur != fl.progress_seen {
                    fl.progress_seen = cur;
                    fl.progress_at = now;
                } else if now.duration_since(fl.progress_at) > stall {
                    expired.push((token, format!("no simulator progress for {stall:?}")));
                }
            }
        }
        for (token, msg) in expired {
            let Some(fl) = inflight.remove(&token) else {
                continue;
            };
            abandoned.insert(token);
            records[fl.index].status = CellStatus::TimedOut;
            records[fl.index].error = msg;
            tallies.timeouts += 1;
            tallies.failed += 1;
            outstanding -= 1;
            progress.tick(false);
            // The hung thread keeps its cell; a replacement takes over
            // the abandoned worker's deque (and keeps stealing).
            spawn_worker(fl.worker);
        }
    }
    drop(tx);

    // Defensive: if the channel disconnected early (no live workers),
    // account for whatever never resolved.
    for &idx in &prep.pending {
        if results[idx].is_none() && records[idx].status.succeeded() {
            records[idx].status = CellStatus::Panicked;
            records[idx].error = "steal pool disconnected".to_string();
            tallies.failed += 1;
        }
    }
    tallies
}

// ---------------------------------------------------------------------------
// Sharded execution: worker, coordinator, merge
// ---------------------------------------------------------------------------

/// Executes one shard of a campaign: the cells with
/// `index % shard.total == shard.index` run on the pool core against the
/// shared cache, every other cell is recorded as
/// [`Skipped`](CellStatus::Skipped), and the resulting shard manifest is
/// written to `<stem>.shard<k>of<N>.manifest.json`.
///
/// The failure policy is always record-style here — the coordinator
/// applies [`FailurePolicy`] after the merge, and a shard child must
/// deliver its manifest even when cells fail. With `exit: true` (set via
/// `SUSS_SHARD` in child processes) the process exits after the manifest
/// is written: 0 when clean, [`SHARD_FAILED_EXIT`] when cells failed.
#[derive(Debug, Clone)]
pub struct ShardWorker {
    /// Execution options.
    pub opts: RunnerOpts,
    /// Which slice of the campaign this worker owns.
    pub shard: ShardInfo,
    /// Exit the process after writing the shard manifest.
    pub exit: bool,
}

impl Executor for ShardWorker {
    fn label(&self) -> String {
        format!("shard {}/{}", self.shard.index, self.shard.total)
    }

    fn execute<T, F>(&self, campaign: &Campaign, f: F) -> CampaignReport<T>
    where
        T: Serialize + Deserialize + Send + 'static,
        F: Fn(&Cell) -> T + Send + Sync + 'static,
    {
        let mut prep = prepare::<T>(campaign, &self.opts, Some(self.shard));
        let tallies = run_pool_phase(campaign, &self.opts, &mut prep, f);
        let report = finish(
            campaign,
            &self.opts,
            self.label(),
            Some(self.shard),
            prep,
            tallies,
            false,
        );
        let stem = self.opts.stem_for(&campaign.experiment);
        let path = shard_manifest_path(&stem, self.shard.index, self.shard.total);
        if let Err(e) = report.manifest.write(&path) {
            eprintln!("error: cannot write shard manifest {}: {e}", path.display());
            if self.exit {
                std::process::exit(4);
            }
        }
        if self.exit {
            std::process::exit(if report.manifest.cells_failed > 0 {
                SHARD_FAILED_EXIT
            } else {
                0
            });
        }
        report
    }
}

/// Splits a campaign into N shards against the shared cache, runs them
/// (as child processes re-executing the current binary with
/// `SUSS_SHARD=k/N`, or in-process when `argv` is `None`), merges the
/// shard manifests, and reloads the full result set from the cache —
/// returning a report whose results and manifest fingerprint are
/// identical to a single-process run.
///
/// The coordinator is self-healing. Child shards are supervised through
/// their heartbeat files: a shard whose progress epoch freezes past the
/// lease ([`RunnerOpts::with_shard_lease`]) is killed, and a dead shard
/// (lease expiry or abnormal exit — [`SHARD_FAILED_EXIT`] is *normal*)
/// is restarted with linear backoff up to its restart budget. Whatever
/// still has no usable manifest at merge time has its remaining cells
/// reassigned: they re-run inline against the warm shared cache, so the
/// merged manifest gets exactly-one-owner coverage and the fingerprint
/// stays byte-identical to a single-shard run. Recovery is visible as
/// `shard_restarts` / `lease_expiries` / `cells_reassigned`.
#[derive(Debug, Clone)]
pub struct ShardCoordinator {
    /// Execution options (must carry a `cache_dir`; without one the
    /// coordinator degrades to the pool executor with a warning).
    pub opts: RunnerOpts,
    /// How many shards to split into.
    pub shards: usize,
    /// Child-process arguments (the current executable is re-invoked
    /// with these), or `None` to run shards in-process sequentially.
    pub argv: Option<Vec<String>>,
}

impl Executor for ShardCoordinator {
    fn label(&self) -> String {
        format!("coordinator({} shards)", self.shards.max(1))
    }

    fn execute<T, F>(&self, campaign: &Campaign, f: F) -> CampaignReport<T>
    where
        T: Serialize + Deserialize + Send + 'static,
        F: Fn(&Cell) -> T + Send + Sync + 'static,
    {
        let started = Instant::now();
        if self.opts.cache_dir.is_none() {
            eprintln!(
                "warning: the shard coordinator needs a shared cache dir \
                 (results are exchanged through it); running on the pool executor instead"
            );
            return PoolExecutor {
                opts: self.opts.clone(),
            }
            .execute(campaign, f);
        }
        let total = self.shards.max(1);
        let stem = self.opts.stem_for(&campaign.experiment);
        write_shard_plan(&stem, campaign, total, &self.opts);
        // Remove leftover shard manifests and heartbeats first: a stale
        // one would masquerade as this run's output (or liveness) if its
        // shard died.
        for k in 0..total {
            let _ = std::fs::remove_file(shard_manifest_path(&stem, k, total));
            let _ = std::fs::remove_file(shard_heartbeat_path(&stem, k, total));
        }
        let f = Arc::new(f);
        let sup = match &self.argv {
            Some(argv) => run_shard_children(total, argv, &self.opts, &stem),
            None => {
                for k in 0..total {
                    let worker = ShardWorker {
                        opts: self.opts.clone(),
                        shard: ShardInfo { index: k, total },
                        exit: false,
                    };
                    let fk = Arc::clone(&f);
                    let _ = worker.execute(campaign, move |cell: &Cell| fk(cell));
                }
                ShardSupervision::default()
            }
        };
        let report = merge_and_load(
            campaign,
            &self.opts,
            started,
            &stem,
            total,
            self.label(),
            Arc::clone(&f),
            sup,
        );
        if report.manifest.all_ok() {
            cleanup_shard_scratch(&stem, total);
        }
        report
    }
}

/// Merges already-written shard manifests (e.g. from shard runs driven
/// by `scripts/shard_run.sh` or on other machines sharing the cache).
/// A shard whose manifest is missing, corrupt, or from a different
/// campaign has its cells reassigned: they run inline against the warm
/// shared cache (so a dead shard's *completed* cells are cache hits and
/// only its orphans recompute), exactly like a coordinator whose child
/// died.
#[derive(Debug, Clone)]
pub struct ShardMerge {
    /// Execution options (cache dir locates the shard results).
    pub opts: RunnerOpts,
    /// How many shard manifests to expect.
    pub shards: usize,
}

impl Executor for ShardMerge {
    fn label(&self) -> String {
        format!("merged({} shards)", self.shards.max(1))
    }

    fn execute<T, F>(&self, campaign: &Campaign, f: F) -> CampaignReport<T>
    where
        T: Serialize + Deserialize + Send + 'static,
        F: Fn(&Cell) -> T + Send + Sync + 'static,
    {
        let started = Instant::now();
        let total = self.shards.max(1);
        let stem = self.opts.stem_for(&campaign.experiment);
        let report = merge_and_load(
            campaign,
            &self.opts,
            started,
            &stem,
            total,
            self.label(),
            Arc::new(f),
            ShardSupervision::default(),
        );
        if report.manifest.all_ok() {
            cleanup_shard_scratch(&stem, total);
        }
        report
    }
}

/// SIGKILL the current process — the chaos hook behind
/// `SUSS_CHAOS_KILL_SHARD=k:after_cells`. Emits a marker line first so
/// chaos runs are auditable in the coordinator's stderr. SIGKILL (not a
/// clean exit) is the point: the shard dies without flushing its
/// manifest, exactly like an OOM kill or a node reboot.
fn chaos_sigkill_self(shard: Option<ShardInfo>, computed: u64) -> ! {
    let label = shard
        .map(|s| format!("{}/{}", s.index, s.total))
        .unwrap_or_else(|| "?".to_string());
    eprintln!("chaos: shard {label} SIGKILLing itself after {computed} computed cells");
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    // SIGKILL is not catchable; if the spawn itself failed, fall back to
    // an abort so the chaos run still dies without writing a manifest.
    std::process::abort();
}

/// Stall-aware liveness lease over a shard's heartbeat epoch: the lease
/// window restarts on every epoch *change* (including the first
/// observation), so a slow-but-advancing shard never expires — only one
/// whose epoch froze for longer than the lease.
#[derive(Debug)]
pub struct LeaseClock {
    lease: Option<Duration>,
    last_epoch: Option<u64>,
    last_advance: Instant,
}

impl LeaseClock {
    /// Start the clock at `now`; `None` disables expiry entirely.
    pub fn new(lease: Option<Duration>, now: Instant) -> Self {
        LeaseClock {
            lease,
            last_epoch: None,
            last_advance: now,
        }
    }

    /// Feed the latest heartbeat observation (`None` = no heartbeat file
    /// yet); returns `true` when the lease has expired.
    pub fn observe(&mut self, epoch: Option<u64>, now: Instant) -> bool {
        if epoch != self.last_epoch {
            self.last_epoch = epoch;
            self.last_advance = now;
        }
        self.lease
            .is_some_and(|l| now.duration_since(self.last_advance) > l)
    }
}

/// What shard supervision observed: stamped into the merged manifest as
/// the `runner.shard_restarts` / `runner.lease_expiries` counters.
#[derive(Debug, Default, Clone, Copy)]
struct ShardSupervision {
    restarts: u64,
    lease_expiries: u64,
}

/// Per-shard supervision state in [`run_shard_children`]'s poll loop.
enum Slot {
    Running {
        child: std::process::Child,
        lease: LeaseClock,
    },
    Backoff {
        at: Instant,
    },
    Finished,
    Dead,
}

/// Spawn one child per shard (the current executable with `argv` plus
/// `SUSS_SHARD=k/N` and the shared `SUSS_CACHE_DIR` in the environment)
/// and supervise them: heartbeats are polled against the lease, an
/// expired or abnormally-exited shard is restarted with linear backoff
/// up to `opts.shard_restarts`, and a shard that exhausts its budget is
/// left for the merge phase to reassign. [`SHARD_FAILED_EXIT`] is a
/// *normal* exit (cells failed but the manifest was written) and is
/// never restarted. Spawn failures only warn, for the same reason.
fn run_shard_children(
    total: usize,
    argv: &[String],
    opts: &RunnerOpts,
    stem: &Path,
) -> ShardSupervision {
    let mut sup = ShardSupervision::default();
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("warning: cannot locate current executable for shard children: {e}");
            return sup;
        }
    };
    let cache = opts
        .cache_dir
        .as_ref()
        .expect("coordinator requires a cache dir");
    let spawn = |k: usize| -> Slot {
        // A stale heartbeat from the previous incarnation would feed the
        // fresh lease a frozen epoch; start from no-signal instead.
        let _ = std::fs::remove_file(shard_heartbeat_path(stem, k, total));
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(argv);
        cmd.env("SUSS_SHARD", format!("{k}/{total}"));
        cmd.env("SUSS_CACHE_DIR", cache);
        // The child writes no figures (it exits after its shard
        // manifest); its stdout is only table noise.
        cmd.stdout(std::process::Stdio::null());
        match cmd.spawn() {
            Ok(child) => Slot::Running {
                child,
                lease: LeaseClock::new(opts.shard_lease, Instant::now()),
            },
            Err(e) => {
                eprintln!("warning: shard {k}/{total} failed to spawn: {e}");
                Slot::Dead
            }
        }
    };
    let mut restarts_used = vec![0u32; total];
    // Grant a restart (with linear backoff) while the budget allows,
    // else give the shard up to merge-time reassignment.
    let next_after_death = |k: usize, restarts_used: &mut [u32], sup: &mut ShardSupervision| {
        if restarts_used[k] < opts.shard_restarts {
            restarts_used[k] += 1;
            sup.restarts += 1;
            let backoff = SHARD_RESTART_BACKOFF * restarts_used[k];
            eprintln!(
                "warning: restarting shard {k}/{total} in {backoff:?} \
                 (restart {} of {})",
                restarts_used[k], opts.shard_restarts
            );
            Slot::Backoff {
                at: Instant::now() + backoff,
            }
        } else {
            eprintln!(
                "warning: shard {k}/{total} is out of restarts; \
                 its remaining cells will be reassigned at merge"
            );
            Slot::Dead
        }
    };
    let mut slots: Vec<Slot> = (0..total).map(&spawn).collect();
    loop {
        let mut live = 0usize;
        for (k, slot) in slots.iter_mut().enumerate() {
            let next: Option<Slot> = match slot {
                Slot::Running { child, lease } => match child.try_wait() {
                    Ok(Some(status)) => {
                        if status.success() {
                            Some(Slot::Finished)
                        } else if status.code() == Some(SHARD_FAILED_EXIT) {
                            eprintln!(
                                "warning: shard {k}/{total} completed with failed cells \
                                 (see its shard manifest)"
                            );
                            Some(Slot::Finished)
                        } else {
                            eprintln!("warning: shard {k}/{total} exited abnormally: {status}");
                            Some(next_after_death(k, &mut restarts_used, &mut sup))
                        }
                    }
                    Ok(None) => {
                        let now = Instant::now();
                        let hb = read_heartbeat(&shard_heartbeat_path(stem, k, total));
                        if lease.observe(hb.map(|h| h.epoch), now) {
                            eprintln!(
                                "warning: shard {k}/{total} heartbeat lease expired \
                                 (epoch frozen past {:?}); killing it",
                                opts.shard_lease.unwrap_or_default()
                            );
                            sup.lease_expiries += 1;
                            let _ = child.kill();
                            let _ = child.wait();
                            Some(next_after_death(k, &mut restarts_used, &mut sup))
                        } else {
                            None
                        }
                    }
                    Err(e) => {
                        eprintln!("warning: waiting for shard {k}/{total} failed: {e}");
                        Some(Slot::Dead)
                    }
                },
                Slot::Backoff { at } => {
                    if Instant::now() >= *at {
                        Some(spawn(k))
                    } else {
                        None
                    }
                }
                Slot::Finished | Slot::Dead => None,
            };
            if let Some(next) = next {
                *slot = next;
            }
            if matches!(slot, Slot::Running { .. } | Slot::Backoff { .. }) {
                live += 1;
            }
        }
        if live == 0 {
            return sup;
        }
        thread::sleep(SHARD_POLL);
    }
}

/// The coordinator's back half: read the shard manifests (reassigning
/// any shard whose manifest is missing, corrupt, or from a different
/// campaign — its cells re-run inline against the warm shared cache),
/// merge them, reload the full result set from the cache (recomputing
/// inline on a cache miss — eviction must not corrupt the campaign),
/// stamp digest, fingerprint, recovery counters, and coordinator wall
/// time, and apply the failure policy.
#[allow(clippy::too_many_arguments)]
fn merge_and_load<T, F>(
    campaign: &Campaign,
    opts: &RunnerOpts,
    started: Instant,
    stem: &Path,
    total: usize,
    exec_label: String,
    f: Arc<F>,
    sup: ShardSupervision,
) -> CampaignReport<T>
where
    T: Serialize + Deserialize + Send + 'static,
    F: Fn(&Cell) -> T + Send + Sync + 'static,
{
    let mut cells_reassigned = 0u64;
    let mut shard_manifests = Vec::with_capacity(total);
    for k in 0..total {
        let path = shard_manifest_path(stem, k, total);
        let read = match RunManifest::read(&path) {
            Ok(m) => match validate_shard_manifest(&m, campaign, k, total) {
                Ok(()) => Some(m),
                Err(why) => {
                    quarantine_shard_manifest(&path, &why);
                    None
                }
            },
            Err(e) => {
                if path.exists() {
                    quarantine_shard_manifest(&path, &e.to_string());
                } else {
                    eprintln!("warning: shard {k}/{total} left no manifest ({e})");
                }
                None
            }
        };
        match read {
            Some(m) => shard_manifests.push(m),
            None => {
                eprintln!(
                    "warning: reassigning shard {k}/{total}'s cells inline \
                     (completed cells resume from the shared cache)"
                );
                let recovered = recover_shard(campaign, opts, k, total, Arc::clone(&f));
                cells_reassigned += recovered.cache_misses as u64;
                shard_manifests.push(recovered);
            }
        }
    }
    let mut manifest = match RunManifest::merge_shards(shard_manifests) {
        Ok(m) => m,
        Err(e) => panic!(
            "campaign '{}': shard merge failed: {e}",
            campaign.experiment
        ),
    };
    let cache = campaign.open_cache(opts);
    let n = campaign.cells.len();
    let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    for cell in &campaign.cells {
        if !manifest.cells[cell.index].status.succeeded() {
            continue;
        }
        let id = campaign.identity(cell);
        match cache.as_ref().and_then(|c| c.load::<T>(&id)) {
            Some(v) => results[cell.index] = Some(v),
            None => {
                eprintln!(
                    "warning: cell '{}' missing from the shared cache; recomputing",
                    cell.label
                );
                let v = f(cell);
                if let Some(c) = &cache {
                    let _ = c.store(&id, &v);
                }
                results[cell.index] = Some(v);
            }
        }
    }
    manifest.executor = exec_label;
    manifest.results_digest = results_digest_of(&results, &manifest.cells);
    // Recovery counters are additive on top of whatever the shard
    // manifests carried (in-process recovery stamps nothing there).
    // None of them enter the fingerprint: recovery must not move it.
    manifest.shard_restarts += sup.restarts;
    manifest.lease_expiries += sup.lease_expiries;
    manifest.cells_reassigned += cells_reassigned;
    let wall = started.elapsed().as_secs_f64();
    manifest.wall_secs = wall;
    manifest.cells_per_sec = n as f64 / wall.max(1e-9);
    manifest.events_per_sec = manifest.events_total as f64 / wall.max(1e-9);
    manifest.utilization =
        manifest.worker_busy_secs / (wall.max(1e-9) * manifest.workers.max(1) as f64);
    manifest.fingerprint = manifest.compute_fingerprint();
    campaign.sweep_cache(opts);
    if opts.progress {
        eprint!("{}", manifest.summary());
    }
    if opts.on_failure == FailurePolicy::Raise {
        raise_first_failure(&manifest);
    }
    CampaignReport { results, manifest }
}

/// Check that a shard manifest parsed from disk actually belongs to this
/// campaign and shard slot — a stale file from another run, a shard
/// manifest copied to the wrong slot, or a mismatched `CAMPAIGN_VERSION`
/// must be quarantined and reassigned, not merged.
fn validate_shard_manifest(
    m: &RunManifest,
    campaign: &Campaign,
    index: usize,
    total: usize,
) -> Result<(), String> {
    let shard = ShardInfo { index, total };
    match m.shard {
        Some(s) if s.index == index && s.total == total => {}
        Some(s) => {
            return Err(format!(
                "claims shard {}/{} but sits in slot {index}/{total}",
                s.index, s.total
            ))
        }
        None => return Err("carries no shard stamp".to_string()),
    }
    if m.experiment != campaign.experiment
        || m.version != campaign.version
        || m.total_cells != campaign.cells.len()
    {
        return Err(format!(
            "belongs to campaign '{}' v{} ({} cells), not '{}' v{} ({} cells)",
            m.experiment,
            m.version,
            m.total_cells,
            campaign.experiment,
            campaign.version,
            campaign.cells.len()
        ));
    }
    if m.cells.len() != campaign.cells.len() {
        return Err(format!(
            "has {} cell records for a {}-cell campaign",
            m.cells.len(),
            campaign.cells.len()
        ));
    }
    for (i, r) in m.cells.iter().enumerate() {
        if r.index != i {
            return Err(format!("cell record {i} is out of position"));
        }
        let owned = shard.owns(i);
        if !owned && r.status != CellStatus::Skipped {
            return Err(format!("executed cell {i}, which it does not own"));
        }
        if owned && r.status == CellStatus::Skipped {
            return Err(format!("skipped cell {i}, which it owns"));
        }
    }
    Ok(())
}

/// Move a hostile shard manifest aside as `<path>.quarantine` (same
/// policy as cache corruption: preserved for forensics, never merged).
fn quarantine_shard_manifest(path: &Path, why: &str) {
    let mut q = path.as_os_str().to_os_string();
    q.push(".quarantine");
    let outcome = std::fs::rename(path, &q);
    match outcome {
        Ok(()) => eprintln!(
            "warning: shard manifest {} {why}; quarantined to {}",
            path.display(),
            std::path::Path::new(&q).display()
        ),
        Err(e) => eprintln!(
            "warning: shard manifest {} {why}; quarantine failed ({e}), ignoring it",
            path.display()
        ),
    }
}

/// Re-run a dead shard's slice inline (in-process, no exit) against the
/// warm shared cache: the cells the dead shard completed are cache hits,
/// only its orphans recompute. Rewrites the shard manifest on disk as a
/// side effect, so a re-driven merge sees the recovered shard. The
/// returned manifest's `cache_misses` is the number of cells that
/// actually had to be recomputed — the `cells_reassigned` counter.
fn recover_shard<T, F>(
    campaign: &Campaign,
    opts: &RunnerOpts,
    index: usize,
    total: usize,
    f: Arc<F>,
) -> RunManifest
where
    T: Serialize + Deserialize + Send + 'static,
    F: Fn(&Cell) -> T + Send + Sync + 'static,
{
    let worker = ShardWorker {
        opts: opts.clone(),
        shard: ShardInfo { index, total },
        // In-process: the chaos kill hook is armed only for `SUSS_SHARD`
        // child processes, so recovery cannot chaos-kill the
        // coordinator even with the env var still set.
        exit: false,
    };
    let report: CampaignReport<T> = worker.execute(campaign, move |cell: &Cell| f(cell));
    report.manifest
}

/// Remove the coordination scratch files (heartbeats and the shard
/// plan) after a fully-successful merge. Shard manifests stay — they
/// are run artifacts, not scratch.
fn cleanup_shard_scratch(stem: &Path, total: usize) {
    for k in 0..total {
        let _ = std::fs::remove_file(shard_heartbeat_path(stem, k, total));
    }
    let name = stem
        .file_name()
        .map(|s| s.to_string_lossy())
        .unwrap_or_default();
    let _ = std::fs::remove_file(stem.with_file_name(format!("{name}.shardplan.json")));
}

/// The machine-readable shard plan written by the coordinator to
/// `<stem>.shardplan.json`: what was split, how, and where the shard
/// manifests will land — so external drivers (other machines sharing the
/// cache) can run shards themselves and merge later.
#[derive(Debug, Clone, Serialize)]
struct ShardPlan {
    experiment: String,
    version: String,
    total_cells: usize,
    shards: usize,
    cache_dir: String,
    cells_per_shard: Vec<usize>,
    shard_manifests: Vec<String>,
}

/// Write the shard plan next to the manifests. Failure only warns — the
/// plan is documentation, not coordination state.
fn write_shard_plan(stem: &Path, campaign: &Campaign, total: usize, opts: &RunnerOpts) {
    let plan = ShardPlan {
        experiment: campaign.experiment.clone(),
        version: campaign.version.clone(),
        total_cells: campaign.cells.len(),
        shards: total,
        cache_dir: opts
            .cache_dir
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_default(),
        cells_per_shard: (0..total)
            .map(|k| {
                let s = ShardInfo { index: k, total };
                (0..campaign.cells.len()).filter(|&i| s.owns(i)).count()
            })
            .collect(),
        shard_manifests: (0..total)
            .map(|k| shard_manifest_path(stem, k, total).display().to_string())
            .collect(),
    };
    let name = stem
        .file_name()
        .map(|s| s.to_string_lossy())
        .unwrap_or_default();
    let path = stem.with_file_name(format!("{name}.shardplan.json"));
    let write = path
        .parent()
        .map(std::fs::create_dir_all)
        .unwrap_or(Ok(()))
        .and_then(|_| std::fs::write(&path, serde::to_string(&plan) + "\n"));
    if let Err(e) = write {
        eprintln!("warning: cannot write shard plan {}: {e}", path.display());
    }
}

// ---------------------------------------------------------------------------
// ExecSpec → executor
// ---------------------------------------------------------------------------

/// The executor built from an [`ExecSpec`] — a closed enum delegating
/// [`Executor`] to the selected engine (the trait's generic method rules
/// out `dyn Executor`).
#[derive(Debug, Clone)]
pub enum BuiltExecutor {
    /// See [`PoolExecutor`].
    Pool(PoolExecutor),
    /// See [`WorkStealingExecutor`].
    Steal(WorkStealingExecutor),
    /// See [`ShardWorker`].
    Shard(ShardWorker),
    /// See [`ShardCoordinator`].
    Coordinator(ShardCoordinator),
    /// See [`ShardMerge`].
    Merge(ShardMerge),
}

impl Executor for BuiltExecutor {
    fn label(&self) -> String {
        match self {
            BuiltExecutor::Pool(e) => e.label(),
            BuiltExecutor::Steal(e) => e.label(),
            BuiltExecutor::Shard(e) => e.label(),
            BuiltExecutor::Coordinator(e) => e.label(),
            BuiltExecutor::Merge(e) => e.label(),
        }
    }

    fn execute<T, F>(&self, campaign: &Campaign, f: F) -> CampaignReport<T>
    where
        T: Serialize + Deserialize + Send + 'static,
        F: Fn(&Cell) -> T + Send + Sync + 'static,
    {
        match self {
            BuiltExecutor::Pool(e) => e.execute(campaign, f),
            BuiltExecutor::Steal(e) => e.execute(campaign, f),
            BuiltExecutor::Shard(e) => e.execute(campaign, f),
            BuiltExecutor::Coordinator(e) => e.execute(campaign, f),
            BuiltExecutor::Merge(e) => e.execute(campaign, f),
        }
    }
}

impl RunnerOpts {
    /// Build the executor selected by [`RunnerOpts::executor`](RunnerOpts)
    /// (the `executor` field): call sites uniformly write
    /// `campaign.run(&opts.executor(), f)`.
    pub fn executor(&self) -> BuiltExecutor {
        match &self.executor {
            ExecSpec::Pool => BuiltExecutor::Pool(PoolExecutor { opts: self.clone() }),
            ExecSpec::WorkStealing => {
                BuiltExecutor::Steal(WorkStealingExecutor { opts: self.clone() })
            }
            ExecSpec::Shard { index, total } => BuiltExecutor::Shard(ShardWorker {
                opts: self.clone(),
                shard: ShardInfo {
                    index: *index,
                    total: *total,
                },
                exit: self.shard_exit,
            }),
            ExecSpec::Coordinator { shards, argv } => {
                BuiltExecutor::Coordinator(ShardCoordinator {
                    opts: self.clone(),
                    shards: *shards,
                    argv: argv.clone(),
                })
            }
            ExecSpec::MergeShards { shards } => BuiltExecutor::Merge(ShardMerge {
                opts: self.clone(),
                shards: *shards,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_campaign(n: u64) -> Campaign {
        let mut c = Campaign::new("unit", "v1");
        for seed in 0..n {
            c.cell(format!("cell-{seed}"), format!("seed={seed}"), seed);
        }
        c
    }

    #[test]
    fn results_arrive_in_cell_order() {
        let c = demo_campaign(32);
        let out = c.run(&RunnerOpts::default().with_workers(8).executor(), |cell| {
            // Uneven cell cost to scramble completion order.
            let spin = (cell.seed % 7) * 200;
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i * i);
            }
            cell.seed as f64 + (acc % 1) as f64
        });
        let expect: Vec<f64> = (0..32).map(|s| s as f64).collect();
        assert_eq!(out.manifest.total_cells, 32);
        assert_eq!(out.manifest.cache_hits, 0);
        assert_eq!(out.manifest.workers, 8);
        assert_eq!(out.manifest.executor, "pool");
        assert!(!out.manifest.results_digest.is_empty());
        assert_eq!(out.expect_all(), expect);
    }

    #[test]
    fn empty_campaign_is_fine() {
        let c = Campaign::new("unit", "v1");
        assert!(c.is_empty());
        let out = c.run(&RunnerOpts::serial().executor(), |_| 0u64);
        assert!(out.results.is_empty());
        assert_eq!(out.manifest.total_cells, 0);
    }

    #[test]
    #[should_panic(expected = "cell 'cell-3' panicked: boom")]
    fn cell_panics_surface_with_label() {
        let c = demo_campaign(6);
        let _ = c.run(&RunnerOpts::default().with_workers(3).executor(), |cell| {
            if cell.seed == 3 {
                panic!("boom");
            }
            cell.seed
        });
    }

    #[test]
    fn cell_events_land_in_manifest_telemetry() {
        let c = demo_campaign(8);
        let out = c.run(&RunnerOpts::default().with_workers(4).executor(), |cell| {
            simtrace::runtime::add_cell_events(100 + cell.seed);
            cell.seed
        });
        let expect: u64 = (0..8).map(|s| 100 + s).sum();
        assert_eq!(out.manifest.events_total, expect);
        for rec in &out.manifest.cells {
            assert_eq!(rec.events, 100 + rec.seed);
        }
        assert!(out.manifest.events_per_sec > 0.0);
        assert!(out.manifest.worker_busy_secs >= 0.0);
        assert!(out.manifest.utilization >= 0.0 && out.manifest.utilization <= 1.0);
    }

    #[test]
    fn record_policy_survives_a_panicking_cell() {
        let c = demo_campaign(8);
        let opts = RunnerOpts::default().with_workers(3).record_failures();
        let clean = c.run(&opts.clone().executor(), |cell| cell.seed * 10);
        assert!(clean.all_ok());
        assert!(!clean.manifest.results_digest.is_empty());

        let hurt = c.run(&opts.executor(), |cell| {
            if cell.seed == 3 {
                panic!("injected");
            }
            cell.seed * 10
        });
        assert!(!hurt.all_ok());
        assert_eq!(hurt.manifest.cells_failed, 1);
        assert_eq!(hurt.manifest.cell_retries, 0);
        assert_eq!(hurt.results[3], None);
        assert!(
            hurt.manifest.results_digest.is_empty(),
            "a failed cell must void the results digest"
        );
        let rec = &hurt.manifest.cells[3];
        assert_eq!(rec.status, CellStatus::Panicked);
        assert_eq!(rec.attempts, 1);
        assert!(rec.error.contains("injected"), "error: {}", rec.error);
        // Every other cell is byte-identical to the clean run.
        for i in (0..8).filter(|&i| i != 3) {
            assert_eq!(hurt.results[i], clean.results[i], "cell {i}");
            assert_eq!(hurt.manifest.cells[i].status, CellStatus::Ok);
        }
    }

    #[test]
    fn retry_recovers_a_flaky_cell() {
        use std::sync::atomic::AtomicU32;
        let c = demo_campaign(6);
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let out = c.run(
            &RunnerOpts::default()
                .with_workers(2)
                .with_cell_retries(2)
                .executor(),
            move |cell| {
                if cell.seed == 2 && t.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient");
                }
                cell.seed
            },
        );
        assert!(out.all_ok());
        assert_eq!(out.results[2], Some(2));
        assert_eq!(out.manifest.cell_retries, 1);
        assert_eq!(out.manifest.cells[2].status, CellStatus::Retried);
        assert_eq!(out.manifest.cells[2].attempts, 2);
        assert_eq!(out.manifest.cells[1].status, CellStatus::Ok);
        assert_eq!(out.manifest.cells[1].attempts, 1);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let c = demo_campaign(4);
        let out = c.run(
            &RunnerOpts::default()
                .with_workers(2)
                .with_cell_retries(2)
                .record_failures()
                .executor(),
            |cell| {
                if cell.seed == 1 {
                    panic!("always");
                }
                cell.seed
            },
        );
        assert_eq!(out.manifest.cells_failed, 1);
        assert_eq!(out.manifest.cell_retries, 2);
        assert_eq!(out.manifest.cells[1].status, CellStatus::Panicked);
        assert_eq!(out.manifest.cells[1].attempts, 3, "1 run + 2 retries");
    }

    #[test]
    fn watchdog_abandons_a_hung_cell() {
        let c = demo_campaign(5);
        let started = Instant::now();
        let out = c.run(
            &RunnerOpts::default()
                .with_workers(2)
                .with_cell_timeout(Duration::from_millis(150))
                .record_failures()
                .executor(),
            |cell| {
                if cell.seed == 1 {
                    // A "hang" that outlives the watchdog by far but
                    // still lets the leaked thread die quickly.
                    std::thread::sleep(Duration::from_secs(4));
                }
                cell.seed
            },
        );
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "campaign must not wait out the hang"
        );
        assert_eq!(out.manifest.cells_failed, 1);
        assert_eq!(out.manifest.cell_timeouts, 1);
        assert_eq!(out.manifest.cells[1].status, CellStatus::TimedOut);
        assert!(out.manifest.cells[1].error.contains("wall-clock"));
        assert_eq!(out.results[1], None);
        for i in [0usize, 2, 3, 4] {
            assert_eq!(out.results[i], Some(i as u64), "cell {i}");
        }
    }

    #[test]
    fn stall_watchdog_spares_slow_but_advancing_cells() {
        let c = demo_campaign(4);
        let out = c.run(
            &RunnerOpts::default()
                .with_workers(2)
                .with_stall_timeout(Duration::from_millis(200))
                .record_failures()
                .executor(),
            |cell| {
                if cell.seed == 0 {
                    // Slower than the stall window end to end, but
                    // progressing the whole time: must survive.
                    for _ in 0..8 {
                        std::thread::sleep(Duration::from_millis(60));
                        simtrace::runtime::tick_progress();
                    }
                } else if cell.seed == 1 {
                    // Livelocked: wall clock advances, simulator doesn't.
                    std::thread::sleep(Duration::from_secs(4));
                }
                cell.seed
            },
        );
        assert_eq!(out.results[0], Some(0), "advancing cell must survive");
        assert_eq!(out.manifest.cells[0].status, CellStatus::Ok);
        assert_eq!(out.results[1], None);
        assert_eq!(out.manifest.cells[1].status, CellStatus::TimedOut);
        assert!(
            out.manifest.cells[1]
                .error
                .contains("no simulator progress"),
            "error: {}",
            out.manifest.cells[1].error
        );
    }

    #[test]
    fn failed_cells_miss_the_cache_so_resume_reruns_only_them() {
        let dir =
            std::env::temp_dir().join(format!("simrunner-resume-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = demo_campaign(6);
        let opts = RunnerOpts::default()
            .with_workers(2)
            .with_cache(&dir)
            .record_failures();
        let broken = c.run(&opts.clone().executor(), |cell| {
            if cell.seed == 4 {
                panic!("boom");
            }
            cell.seed as f64
        });
        assert_eq!(broken.manifest.cells_failed, 1);
        assert_eq!(broken.manifest.cache_hits, 0);
        // Resume: the bug is "fixed"; only the failed cell recomputes.
        let resumed = c.run(&opts.executor(), |cell| cell.seed as f64);
        assert!(resumed.all_ok());
        assert_eq!(resumed.manifest.cache_hits, 5);
        assert_eq!(resumed.manifest.cache_misses, 1);
        assert!(!resumed.manifest.cells[4].cached);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_cache_degrades_to_uncached_run() {
        // A file where the cache root should be: create_dir_all fails.
        let file =
            std::env::temp_dir().join(format!("simrunner-badroot-unit-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        let c = demo_campaign(3);
        let out = c.run(&RunnerOpts::serial().with_cache(&file).executor(), |cell| {
            cell.seed
        });
        assert_eq!(out.manifest.cache_hits, 0);
        assert_eq!(out.expect_all(), vec![0, 1, 2]);
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn profiled_run_lands_spans_and_wall_percentiles_in_manifest() {
        let c = demo_campaign(8);
        let out = c.run(
            &RunnerOpts::default()
                .with_workers(2)
                .with_profile()
                .executor(),
            |cell| {
                let _g = simtrace::prof::span("cell/work");
                // Make the span worth at least a few microseconds.
                let mut acc = 0u64;
                for i in 0..20_000 {
                    acc = acc.wrapping_add(std::hint::black_box(i ^ cell.seed));
                }
                acc % 2
            },
        );
        let m = &out.manifest;
        assert!(!m.prof.is_empty(), "profiled run must record spans");
        assert!(
            m.prof.spans.iter().any(|s| s.path == "cell/work"),
            "spans: {:?}",
            m.prof.spans
        );
        let work = m.prof.spans.iter().find(|s| s.path == "cell/work").unwrap();
        assert_eq!(work.calls, 8, "one span entry per cell");
        assert!(m.wall_ms_p50 > 0.0);
        assert!(m.wall_ms_p99 >= m.wall_ms_p50);
        // An unprofiled run of the same campaign records nothing.
        let off = c.run(&RunnerOpts::default().with_workers(2).executor(), |cell| {
            cell.seed
        });
        assert!(off.manifest.prof.is_empty());
    }

    #[test]
    fn scope_annotations_flow_into_the_manifest_sorted() {
        let c = demo_campaign(4);
        let out = c.run(&RunnerOpts::default().with_workers(2).executor(), |cell| {
            simtrace::runtime::add_scope_annotation(simtrace::ScopeAnnotation {
                label: format!("scope/{}/queue_depth", cell.label),
                n: 10 + cell.seed,
                p50: 0.001,
                p90: 0.002,
                p99: 0.003,
                p999: 0.004,
            });
            cell.seed
        });
        assert_eq!(out.manifest.scope_annotations.len(), 4);
        let labels: Vec<&str> = out
            .manifest
            .scope_annotations
            .iter()
            .map(|a| a.label.as_str())
            .collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(
            labels, sorted,
            "scope annotations must be canonically ordered"
        );
        assert!(out
            .manifest
            .scope_annotations
            .iter()
            .any(|a| a.label == "scope/cell-2/queue_depth" && a.n == 12));
    }

    #[test]
    fn terminal_panic_dumps_the_flight_recorder() {
        let dir =
            std::env::temp_dir().join(format!("simrunner-flightrec-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = demo_campaign(5);
        let out = c.run(
            &RunnerOpts::default()
                .with_workers(2)
                .with_cell_retries(1)
                .with_flightrec_dir(&dir)
                .record_failures()
                .executor(),
            |cell| {
                simtrace::flightrec::record_with(|| {
                    simtrace::TraceRecord::metric(42, simtrace::kind::COUNTER, "unit.marker", 7)
                });
                if cell.seed == 3 {
                    panic!("terminal");
                }
                cell.seed
            },
        );
        assert!(!out.all_ok());
        let rec = &out.manifest.cells[3];
        assert_eq!(rec.status, CellStatus::Panicked);
        assert!(
            rec.flightrec.ends_with("cell-3.jsonl"),
            "dump path: {}",
            rec.flightrec
        );
        let dump = std::fs::read_to_string(&rec.flightrec).expect("dump exists");
        let parsed = simtrace::query::parse_jsonl(&dump).expect("dump parses");
        // Seeded dispatch record (attempt 2 after one retry) plus the
        // cell's own marker.
        assert!(parsed
            .iter()
            .any(|r| r.name.as_deref() == Some("runner.dispatch") && r.value == Some(2.0)));
        assert!(parsed
            .iter()
            .any(|r| r.name.as_deref() == Some("unit.marker")));
        // Successful cells leave no dump.
        for i in (0..5).filter(|&i| i != 3) {
            assert!(out.manifest.cells[i].flightrec.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timed_out_cell_dumps_the_flight_recorder_from_outside() {
        let dir = std::env::temp_dir().join(format!(
            "simrunner-flightrec-hang-unit-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let c = demo_campaign(3);
        let out = c.run(
            &RunnerOpts::default()
                .with_workers(2)
                .with_cell_timeout(Duration::from_millis(150))
                .with_flightrec_dir(&dir)
                .record_failures()
                .executor(),
            |cell| {
                if cell.seed == 1 {
                    std::thread::sleep(Duration::from_secs(4));
                }
                cell.seed
            },
        );
        let rec = &out.manifest.cells[1];
        assert_eq!(rec.status, CellStatus::TimedOut);
        assert!(!rec.flightrec.is_empty(), "hung cell must leave a dump");
        let dump = std::fs::read_to_string(&rec.flightrec).expect("dump exists");
        assert!(
            simtrace::query::parse_jsonl(&dump).is_ok_and(|r| !r.is_empty()),
            "dump must parse non-empty"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- work-stealing executor ----

    fn steal_opts() -> RunnerOpts {
        RunnerOpts::default()
            .with_workers(4)
            .with_executor(ExecSpec::WorkStealing)
    }

    #[test]
    fn steal_executor_matches_the_pool_byte_for_byte() {
        let c = demo_campaign(24);
        let work = |cell: &Cell| {
            let spin = (cell.seed % 5) * 400;
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(std::hint::black_box(i * i));
            }
            simtrace::runtime::add_cell_events(cell.seed + acc % 1);
            cell.seed as f64 * 1.5
        };
        let pool = c.run(&RunnerOpts::default().with_workers(4).executor(), work);
        let steal = c.run(&steal_opts().executor(), work);
        assert_eq!(steal.manifest.executor, "steal");
        assert_eq!(steal.results, pool.results);
        assert_eq!(
            steal.manifest.results_digest, pool.manifest.results_digest,
            "the digest is the value-level identity and must not see the engine"
        );
        assert_eq!(
            steal.manifest.compute_fingerprint(),
            pool.manifest.compute_fingerprint(),
            "manifest fingerprints must match across executors"
        );
    }

    #[test]
    fn steal_executor_retries_and_records_failures() {
        use std::sync::atomic::AtomicU32;
        let c = demo_campaign(6);
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let out = c.run(&steal_opts().with_cell_retries(2).executor(), move |cell| {
            if cell.seed == 2 && t.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            cell.seed
        });
        assert!(out.all_ok());
        assert_eq!(out.manifest.cell_retries, 1);
        assert_eq!(out.manifest.cells[2].status, CellStatus::Retried);

        let hurt = c.run(&steal_opts().record_failures().executor(), |cell| {
            if cell.seed == 5 {
                panic!("hard");
            }
            cell.seed
        });
        assert_eq!(hurt.manifest.cells_failed, 1);
        assert_eq!(hurt.manifest.cells[5].status, CellStatus::Panicked);
        assert_eq!(hurt.results[5], None);
    }

    #[test]
    #[should_panic(expected = "cell 'cell-1' panicked: boom")]
    fn steal_executor_raises_under_the_default_policy() {
        let c = demo_campaign(3);
        let _ = c.run(&steal_opts().executor(), |cell| {
            if cell.seed == 1 {
                panic!("boom");
            }
            cell.seed
        });
    }

    #[test]
    fn steal_watchdog_abandons_a_hung_cell() {
        let c = demo_campaign(5);
        let started = Instant::now();
        let out = c.run(
            &steal_opts()
                .with_workers(2)
                .with_cell_timeout(Duration::from_millis(150))
                .record_failures()
                .executor(),
            |cell| {
                if cell.seed == 1 {
                    // Outlives the watchdog by far; the abandoned thread
                    // becomes a detached sentinel and dies on its own.
                    std::thread::sleep(Duration::from_secs(4));
                }
                cell.seed
            },
        );
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "campaign must not wait out the hang"
        );
        assert_eq!(out.manifest.cells_failed, 1);
        assert_eq!(out.manifest.cell_timeouts, 1);
        assert_eq!(out.manifest.cells[1].status, CellStatus::TimedOut);
        assert!(out.manifest.cells[1].error.contains("wall-clock"));
        assert_eq!(out.results[1], None);
        for i in [0usize, 2, 3, 4] {
            assert_eq!(out.results[i], Some(i as u64), "cell {i}");
        }
    }

    #[test]
    fn steal_stall_watchdog_spares_slow_but_advancing_cells() {
        let c = demo_campaign(4);
        let out = c.run(
            &steal_opts()
                .with_workers(2)
                .with_stall_timeout(Duration::from_millis(200))
                .record_failures()
                .executor(),
            |cell| {
                if cell.seed == 0 {
                    // Slower than the stall window end to end, but
                    // progressing the whole time: must survive.
                    for _ in 0..8 {
                        std::thread::sleep(Duration::from_millis(60));
                        simtrace::runtime::tick_progress();
                    }
                } else if cell.seed == 1 {
                    // Livelocked: wall clock advances, simulator doesn't.
                    std::thread::sleep(Duration::from_secs(4));
                }
                cell.seed
            },
        );
        assert_eq!(out.results[0], Some(0), "advancing cell must survive");
        assert_eq!(out.manifest.cells[0].status, CellStatus::Ok);
        assert_eq!(out.results[1], None);
        assert_eq!(out.manifest.cells[1].status, CellStatus::TimedOut);
        assert!(
            out.manifest.cells[1]
                .error
                .contains("no simulator progress"),
            "error: {}",
            out.manifest.cells[1].error
        );
    }

    // ---- shard supervision ----

    #[test]
    fn lease_clock_expires_only_frozen_epochs() {
        let t0 = Instant::now();
        let lease = Duration::from_millis(100);
        let mut clock = LeaseClock::new(Some(lease), t0);
        // No heartbeat yet: the window runs from construction...
        assert!(!clock.observe(None, t0 + Duration::from_millis(90)));
        // ...and the first observation counts as an advance (slow start).
        assert!(!clock.observe(Some(0), t0 + Duration::from_millis(150)));
        // Advancing epochs keep resetting the window indefinitely, even
        // with every gap longer than half the lease.
        for i in 1..10u64 {
            assert!(
                !clock.observe(Some(i), t0 + Duration::from_millis(150 + i * 90)),
                "epoch {i} was advancing"
            );
        }
        // Frozen epoch: expires once the lease elapses with no change.
        let frozen_at = t0 + Duration::from_millis(150 + 9 * 90);
        assert!(!clock.observe(Some(9), frozen_at + Duration::from_millis(90)));
        assert!(clock.observe(Some(9), frozen_at + Duration::from_millis(101)));

        // A shard that never writes a heartbeat at all expires too.
        let mut silent = LeaseClock::new(Some(lease), t0);
        assert!(silent.observe(None, t0 + Duration::from_millis(101)));

        // No lease configured: never expires, however stale.
        let mut off = LeaseClock::new(None, t0);
        assert!(!off.observe(None, t0 + Duration::from_secs(3600)));
    }

    #[test]
    fn shard_manifest_validation_rejects_imposters() {
        let dir =
            std::env::temp_dir().join(format!("simrunner-shardval-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = demo_campaign(6);
        let opts = RunnerOpts::serial()
            .with_cache(dir.join("cache"))
            .with_manifest_stem(dir.join("unit"));
        let worker = ShardWorker {
            opts: opts.clone(),
            shard: ShardInfo { index: 0, total: 2 },
            exit: false,
        };
        let m = worker.execute(&c, |cell: &Cell| cell.seed).manifest;
        assert!(validate_shard_manifest(&m, &c, 0, 2).is_ok());
        // Wrong slot: a shard-0 manifest cannot stand in for shard 1.
        assert!(validate_shard_manifest(&m, &c, 1, 2).is_err_and(|e| e.contains("slot")));
        // Wrong campaign version.
        let mut stale = m.clone();
        stale.version = "other".to_string();
        assert!(validate_shard_manifest(&stale, &c, 0, 2)
            .is_err_and(|e| e.contains("belongs to campaign")));
        // Executed a cell it does not own.
        let mut greedy = m.clone();
        greedy.cells[1].status = CellStatus::Ok;
        assert!(
            validate_shard_manifest(&greedy, &c, 0, 2).is_err_and(|e| e.contains("does not own"))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- shard worker ----

    #[test]
    fn shard_worker_computes_only_owned_cells() {
        let dir =
            std::env::temp_dir().join(format!("simrunner-shardworker-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = demo_campaign(7);
        let opts = RunnerOpts::serial()
            .with_cache(dir.join("cache"))
            .with_manifest_stem(dir.join("unit"));
        let worker = ShardWorker {
            opts: opts.clone(),
            shard: ShardInfo { index: 1, total: 3 },
            exit: false,
        };
        let out = worker.execute(&c, |cell: &Cell| cell.seed * 2);
        assert_eq!(out.manifest.executor, "shard 1/3");
        assert_eq!(out.manifest.shard, Some(ShardInfo { index: 1, total: 3 }));
        // Owns 1 and 4 (7 cells, stride 3).
        assert_eq!(out.manifest.cells_skipped, 5);
        assert_eq!(out.manifest.cache_misses, 2);
        for i in 0..7 {
            if i % 3 == 1 {
                assert_eq!(out.results[i], Some(i as u64 * 2), "cell {i}");
                assert_eq!(out.manifest.cells[i].status, CellStatus::Ok);
            } else {
                assert_eq!(out.results[i], None, "cell {i}");
                assert_eq!(out.manifest.cells[i].status, CellStatus::Skipped);
            }
        }
        let path = shard_manifest_path(&dir.join("unit"), 1, 3);
        let written = RunManifest::read(&path).expect("shard manifest written");
        assert_eq!(written.cells_skipped, 5);
        assert_eq!(written.fingerprint, written.compute_fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
