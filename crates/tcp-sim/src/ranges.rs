//! Ordered, non-overlapping byte-range sets.
//!
//! Used by the receiver's reassembly buffer and the sender's SACK
//! scoreboard. Ranges are half-open `[start, end)` over absolute stream
//! offsets.

use std::fmt;

/// A half-open byte range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteRange {
    /// Inclusive start offset.
    pub start: u64,
    /// Exclusive end offset.
    pub end: u64,
}

impl ByteRange {
    /// Create a range. `start == end` yields an empty range.
    ///
    /// # Panics
    /// Panics if `start > end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "inverted range [{start}, {end})");
        ByteRange { start, end }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `offset` lies inside the range.
    pub fn contains(&self, offset: u64) -> bool {
        self.start <= offset && offset < self.end
    }

    /// Whether the two ranges overlap or touch (can be merged).
    pub fn mergeable(&self, other: &ByteRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The intersection, if non-empty.
    pub fn intersect(&self, other: &ByteRange) -> Option<ByteRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then(|| ByteRange::new(start, end))
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A set of disjoint, sorted byte ranges with merge-on-insert.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    ranges: Vec<ByteRange>,
}

impl RangeSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of disjoint ranges.
    pub fn num_ranges(&self) -> usize {
        self.ranges.len()
    }

    /// Total bytes covered.
    pub fn total_bytes(&self) -> u64 {
        self.ranges.iter().map(ByteRange::len).sum()
    }

    /// Whether the set covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterate the disjoint ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ByteRange> + '_ {
        self.ranges.iter().copied()
    }

    /// Iterate ranges that end after `offset` (ascending), skipping the
    /// fully-consumed prefix in O(log n).
    pub fn iter_from(&self, offset: u64) -> impl Iterator<Item = ByteRange> + '_ {
        let i = self.ranges.partition_point(|x| x.end <= offset);
        self.ranges[i..].iter().copied()
    }

    /// Insert a range, merging with any overlapping/adjacent ranges.
    /// Returns the number of *new* bytes added (0 if fully duplicate).
    pub fn insert(&mut self, r: ByteRange) -> u64 {
        if r.is_empty() {
            return 0;
        }
        let before = self.total_bytes();
        // Find insertion window: all ranges mergeable with r.
        let lo = self.ranges.partition_point(|x| x.end < r.start);
        let hi = self.ranges.partition_point(|x| x.start <= r.end);
        if lo == hi {
            self.ranges.insert(lo, r);
        } else {
            let merged = ByteRange::new(
                self.ranges[lo].start.min(r.start),
                self.ranges[hi - 1].end.max(r.end),
            );
            self.ranges.splice(lo..hi, std::iter::once(merged));
        }
        self.total_bytes() - before
    }

    /// Remove a range from the set (set difference), splitting any range
    /// that straddles it. Returns the number of bytes removed.
    pub fn remove(&mut self, r: ByteRange) -> u64 {
        if r.is_empty() {
            return 0;
        }
        let before = self.total_bytes();
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        for &x in &self.ranges {
            match x.intersect(&r) {
                None => out.push(x),
                Some(_) => {
                    if x.start < r.start {
                        out.push(ByteRange::new(x.start, r.start));
                    }
                    if r.end < x.end {
                        out.push(ByteRange::new(r.end, x.end));
                    }
                }
            }
        }
        self.ranges = out;
        before - self.total_bytes()
    }

    /// Remove every byte below `offset` (they have been consumed).
    pub fn remove_below(&mut self, offset: u64) {
        self.ranges.retain_mut(|r| {
            if r.end <= offset {
                false
            } else {
                r.start = r.start.max(offset);
                true
            }
        });
    }

    /// Whether `offset` is covered by the set.
    pub fn contains(&self, offset: u64) -> bool {
        let i = self.ranges.partition_point(|x| x.end <= offset);
        self.ranges.get(i).is_some_and(|r| r.contains(offset))
    }

    /// Bytes of the set that fall within `[start, end)`.
    pub fn covered_within(&self, within: ByteRange) -> u64 {
        self.ranges
            .iter()
            .filter_map(|r| r.intersect(&within))
            .map(|r| r.len())
            .sum()
    }

    /// The end of the contiguous run starting at `offset` (== `offset` if
    /// `offset` itself is not covered). This is the receiver's cumulative
    /// ACK computation.
    pub fn contiguous_end(&self, offset: u64) -> u64 {
        let i = self.ranges.partition_point(|x| x.end < offset);
        match self.ranges.get(i) {
            Some(r) if r.start <= offset => r.end.max(offset),
            _ => offset,
        }
    }

    /// The first gap (uncovered range) at or after `offset`, bounded by
    /// `limit`. Returns `None` if everything in `[offset, limit)` is
    /// covered. This is the sender's "next hole to retransmit" query.
    pub fn first_gap(&self, offset: u64, limit: u64) -> Option<ByteRange> {
        if offset >= limit {
            return None;
        }
        let mut cursor = offset;
        let start_idx = self.ranges.partition_point(|x| x.end <= offset);
        for r in &self.ranges[start_idx..] {
            if r.start > cursor {
                return Some(ByteRange::new(cursor, r.start.min(limit)));
            }
            cursor = cursor.max(r.end);
            if cursor >= limit {
                return None;
            }
        }
        (cursor < limit).then(|| ByteRange::new(cursor, limit))
    }

    /// The most recently useful SACK blocks: the `max_blocks` ranges with
    /// the highest offsets (receivers report newest information first).
    pub fn sack_blocks(&self, above: u64, max_blocks: usize) -> Vec<ByteRange> {
        self.ranges
            .iter()
            .rev()
            .filter(|r| r.end > above)
            .take(max_blocks)
            .map(|r| ByteRange::new(r.start.max(above), r.end))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: u64, b: u64) -> ByteRange {
        ByteRange::new(a, b)
    }

    #[test]
    fn basic_range_ops() {
        let x = r(10, 20);
        assert_eq!(x.len(), 10);
        assert!(x.contains(10) && x.contains(19) && !x.contains(20));
        assert_eq!(x.intersect(&r(15, 30)), Some(r(15, 20)));
        assert_eq!(x.intersect(&r(20, 30)), None);
        assert!(x.mergeable(&r(20, 30)), "touching ranges merge");
        assert!(!x.mergeable(&r(21, 30)));
    }

    #[test]
    #[should_panic]
    fn inverted_range_panics() {
        r(5, 4);
    }

    #[test]
    fn insert_disjoint_sorted() {
        let mut s = RangeSet::new();
        assert_eq!(s.insert(r(30, 40)), 10);
        assert_eq!(s.insert(r(10, 20)), 10);
        assert_eq!(s.insert(r(50, 60)), 10);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![r(10, 20), r(30, 40), r(50, 60)]);
        assert_eq!(s.total_bytes(), 30);
    }

    #[test]
    fn insert_merges_overlaps() {
        let mut s = RangeSet::new();
        s.insert(r(10, 20));
        s.insert(r(30, 40));
        // Bridges both, overlapping each.
        assert_eq!(s.insert(r(15, 35)), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![r(10, 40)]);
    }

    #[test]
    fn insert_merges_adjacent() {
        let mut s = RangeSet::new();
        s.insert(r(10, 20));
        s.insert(r(20, 30));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![r(10, 30)]);
    }

    #[test]
    fn duplicate_insert_adds_nothing() {
        let mut s = RangeSet::new();
        s.insert(r(10, 20));
        assert_eq!(s.insert(r(12, 18)), 0);
        assert_eq!(s.total_bytes(), 10);
    }

    #[test]
    fn empty_insert_ignored() {
        let mut s = RangeSet::new();
        assert_eq!(s.insert(r(5, 5)), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn contiguous_end_cumulative_ack() {
        let mut s = RangeSet::new();
        s.insert(r(0, 10));
        s.insert(r(20, 30));
        assert_eq!(s.contiguous_end(0), 10);
        assert_eq!(s.contiguous_end(10), 10, "offset at gap stays put");
        assert_eq!(s.contiguous_end(20), 30);
        assert_eq!(s.contiguous_end(5), 10);
        assert_eq!(s.contiguous_end(40), 40);
    }

    #[test]
    fn first_gap_queries() {
        let mut s = RangeSet::new();
        s.insert(r(10, 20));
        s.insert(r(30, 40));
        assert_eq!(s.first_gap(0, 50), Some(r(0, 10)));
        assert_eq!(s.first_gap(10, 50), Some(r(20, 30)));
        assert_eq!(s.first_gap(35, 50), Some(r(40, 50)));
        assert_eq!(s.first_gap(10, 20), None, "fully covered window");
        assert_eq!(s.first_gap(50, 50), None, "empty window");
        // Gap clipped by limit.
        assert_eq!(s.first_gap(20, 25), Some(r(20, 25)));
    }

    #[test]
    fn remove_splits_straddled_range() {
        let mut s = RangeSet::new();
        s.insert(r(10, 40));
        assert_eq!(s.remove(r(20, 30)), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![r(10, 20), r(30, 40)]);
        // Removing uncovered bytes is a no-op.
        assert_eq!(s.remove(r(20, 30)), 0);
        // Removal spanning multiple ranges.
        assert_eq!(s.remove(r(15, 35)), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![r(10, 15), r(35, 40)]);
    }

    #[test]
    fn remove_below_trims_and_drops() {
        let mut s = RangeSet::new();
        s.insert(r(10, 20));
        s.insert(r(30, 40));
        s.remove_below(15);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![r(15, 20), r(30, 40)]);
        s.remove_below(25);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![r(30, 40)]);
        s.remove_below(100);
        assert!(s.is_empty());
    }

    #[test]
    fn contains_offset() {
        let mut s = RangeSet::new();
        s.insert(r(10, 20));
        assert!(s.contains(10) && s.contains(19));
        assert!(!s.contains(9) && !s.contains(20));
    }

    #[test]
    fn covered_within_window() {
        let mut s = RangeSet::new();
        s.insert(r(10, 20));
        s.insert(r(30, 40));
        assert_eq!(s.covered_within(r(0, 50)), 20);
        assert_eq!(s.covered_within(r(15, 35)), 10);
        assert_eq!(s.covered_within(r(20, 30)), 0);
    }

    #[test]
    fn sack_blocks_newest_first() {
        let mut s = RangeSet::new();
        s.insert(r(10, 20));
        s.insert(r(30, 40));
        s.insert(r(50, 60));
        s.insert(r(70, 80));
        let blocks = s.sack_blocks(0, 3);
        assert_eq!(blocks, vec![r(70, 80), r(50, 60), r(30, 40)]);
        // `above` trims and filters.
        let blocks = s.sack_blocks(55, 3);
        assert_eq!(blocks, vec![r(70, 80), r(55, 60)]);
    }
}
