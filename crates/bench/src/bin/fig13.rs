//! Figure 13: SUSS has no impact on large flows (100 MB transfer).

use experiments::fig13::{run, Fig13Params};
use suss_bench::BenchCli;

fn main() {
    let o = BenchCli::parse("fig13");
    let p = if o.quick {
        Fig13Params::quick()
    } else {
        Fig13Params::paper()
    };
    let r = run(&p);
    o.emit(
        &format!(
            "Fig. 13 — per-MB arrival improvement on {}",
            r.scenario.id()
        ),
        &r.to_table(),
    );
}
