//! # simstats — statistics for the SUSS experiment harness
//!
//! * [`summary`] — mean/σ/CI batch aggregation (the paper's 50-iteration
//!   averages with standard-deviation bands) and the FCT-improvement metric;
//! * [`hist`] — fixed-bin log-scale FCT histograms with commutative
//!   merge, the streaming percentile sketch behind the fleet campaigns;
//! * [`fairness`] — Jain's index (RFC 5166, paper §6.4);
//! * [`series`] — step-series resampling and windowed goodput;
//! * [`table`] — aligned text tables and CSV emission for the
//!   figure/table binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fairness;
pub mod hist;
pub mod plot;
pub mod series;
pub mod summary;
pub mod table;

pub use fairness::{jain_index, jain_index_windowed};
pub use hist::LogHistogram;
pub use plot::ascii_chart;
pub use series::StepSeries;
pub use summary::{improvement, percentile, Summary};
pub use table::{fmt_bytes, fmt_pct, fmt_secs, TextTable};
