//! Extension: SUSS under a CoDel (RFC 8289) bottleneck.

use experiments::extensions::codel_sweep;
use suss_bench::BenchCli;

fn main() {
    let o = BenchCli::parse("ext_codel");
    let (sizes, iters): (Vec<u64>, u64) = if o.quick {
        (vec![2 * workload::MB], 2)
    } else {
        (
            vec![
                workload::MB,
                2 * workload::MB,
                5 * workload::MB,
                10 * workload::MB,
            ],
            8,
        )
    };
    let (t, manifest) = codel_sweep(&sizes, iters, 1, &o.runner());
    o.write_manifest(&manifest);
    o.emit("Extension — SUSS with a CoDel AQM bottleneck", &t);
}
