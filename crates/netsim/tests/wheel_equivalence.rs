//! Scheduler-equivalence contract: the timer wheel must dispatch events in
//! exactly the order the binary heap did, so every simulation observable —
//! delivery traces, counter totals, RNG draws — is byte-identical across
//! engine configurations.

use netsim::{
    Agent, Bandwidth, Ctx, EngineConfig, FaultPlan, FlapWindow, FlowId, GilbertElliott,
    JitterModel, LinkId, LinkSpec, Packet, SchedulerKind, Sim, SimTime,
};
use std::any::Any;
use std::time::Duration;

/// Echoes every packet back and logs everything it observes.
struct Echo {
    out: Option<LinkId>,
    got: Vec<(SimTime, u64)>,
    timer_log: Vec<(SimTime, u64)>,
}

impl Echo {
    fn new() -> Self {
        Echo {
            out: None,
            got: Vec::new(),
            timer_log: Vec::new(),
        }
    }
}

impl Agent for Echo {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.got.push((ctx.now(), pkt.id));
        if let Some(out) = self.out {
            ctx.send(out, Packet::opaque(pkt.flow, pkt.dst, pkt.src, pkt.size));
        }
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        self.timer_log.push((ctx.now(), token));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A jittery, lossy ping-pong mesh: enough concurrent events, RNG draws,
/// and FIFO clamping to catch any ordering divergence between schedulers.
fn echo_mesh_trace(engine: EngineConfig) -> (Vec<(SimTime, u64)>, Vec<(SimTime, u64)>) {
    let mut sim = Sim::with_engine(99, engine);
    let a = sim.add_agent(Box::new(Echo::new()));
    let b = sim.add_agent(Box::new(Echo::new()));
    let spec = |delay_ms| {
        LinkSpec::clean(Bandwidth::from_mbps(20), Duration::from_millis(delay_ms))
            .with_jitter(JitterModel::correlated(Duration::from_millis(2), 0.5))
            .with_loss(0.02)
            .with_queue_bytes(20_000)
    };
    let (ab, ba) = sim.add_link(a, b, spec(7), spec(12));
    sim.agent_mut::<Echo>(b).out = Some(ba);
    sim.with_agent_ctx::<Echo, _>(a, |_, ctx| {
        for i in 0..300u64 {
            ctx.send(ab, Packet::opaque(FlowId(1), a, b, 1200));
            // Timers interleaved with traffic, some at equal instants.
            ctx.set_timer(SimTime::from_millis(i / 3), i);
        }
        // Far timers that cross the wheel's overflow boundary.
        for i in 0..10u64 {
            ctx.set_timer(SimTime::from_secs(i), 1000 + i);
        }
    });
    sim.run_to_completion();
    let got_b = sim.agent::<Echo>(b).got.clone();
    let timers_a = sim.agent::<Echo>(a).timer_log.clone();
    (got_b, timers_a)
}

#[test]
fn wheel_reproduces_heap_dispatch_order() {
    // Heap + no pooling + no batching vs the full default engine: the
    // observable trace must not care about any engine knob.
    let heap = echo_mesh_trace(EngineConfig::baseline());
    let wheel = echo_mesh_trace(EngineConfig::default());
    assert_eq!(heap, wheel, "schedulers must dispatch identically");
}

/// The echo mesh again, with every fault family active on the a→b
/// direction: fault RNG substreams and the reorder/duplication event
/// churn must replay identically on both schedulers.
fn faulted_mesh_trace(engine: EngineConfig) -> (Vec<(SimTime, u64)>, Vec<(SimTime, u64)>) {
    let mut sim = Sim::with_engine(42, engine);
    let a = sim.add_agent(Box::new(Echo::new()));
    let b = sim.add_agent(Box::new(Echo::new()));
    let plan = FaultPlan::new()
        .with_ge(GilbertElliott::gilbert(0.05, 0.3, 0.8))
        .with_flaps(vec![FlapWindow {
            down: SimTime::from_millis(40),
            up: SimTime::from_millis(70),
        }])
        .with_reorder(0.1, Duration::from_millis(3))
        .with_duplicate(0.05)
        .with_delay_steps(vec![(SimTime::from_millis(30), Duration::from_millis(5))]);
    let fwd = LinkSpec::clean(Bandwidth::from_mbps(20), Duration::from_millis(7))
        .with_jitter(JitterModel::correlated(Duration::from_millis(2), 0.5))
        .with_loss(0.02)
        .with_queue_bytes(20_000)
        .with_faults(plan);
    let rev = LinkSpec::clean(Bandwidth::from_mbps(20), Duration::from_millis(12))
        .with_queue_bytes(20_000);
    let (ab, ba) = sim.add_link(a, b, fwd, rev);
    sim.agent_mut::<Echo>(b).out = Some(ba);
    sim.with_agent_ctx::<Echo, _>(a, |_, ctx| {
        for i in 0..300u64 {
            ctx.send(ab, Packet::opaque(FlowId(1), a, b, 1200));
            ctx.set_timer(SimTime::from_millis(i / 3), i);
        }
    });
    sim.run_to_completion();
    let got_b = sim.agent::<Echo>(b).got.clone();
    let timers_a = sim.agent::<Echo>(a).timer_log.clone();
    (got_b, timers_a)
}

#[test]
fn wheel_reproduces_heap_dispatch_order_under_faults() {
    let heap = faulted_mesh_trace(EngineConfig::baseline());
    let wheel = faulted_mesh_trace(EngineConfig::default());
    assert!(
        !heap.0.is_empty(),
        "faulted mesh must still deliver packets"
    );
    assert_eq!(heap, wheel, "faulted schedules must dispatch identically");
}

#[test]
fn counter_totals_identical_across_engines() {
    let snap = |engine| {
        let mut sim = Sim::with_engine(5, engine);
        let a = sim.add_agent(Box::new(Echo::new()));
        let b = sim.add_agent(Box::new(Echo::new()));
        let spec = LinkSpec::clean(Bandwidth::from_mbps(5), Duration::from_millis(30))
            .with_queue_bytes(6_000);
        let ab = sim.add_half_link(a, b, spec);
        sim.with_agent_ctx::<Echo, _>(a, |_, ctx| {
            for _ in 0..50 {
                ctx.send(ab, Packet::opaque(FlowId(1), a, b, 1500));
            }
        });
        sim.run_to_completion();
        sim.metrics().snapshot()
    };
    let heap = snap(EngineConfig {
        scheduler: SchedulerKind::BinaryHeap,
        payload_pooling: true,
        batched_delivery: false,
    });
    let wheel = snap(EngineConfig::default());
    // `net.sched_*` counters are engine-internal (cascades are always 0 on
    // the heap, batched coalesces 0 without batching); everything else
    // must match value-for-value.
    for (name, delta) in wheel.diff(&heap) {
        if name.starts_with("net.sched_") {
            continue;
        }
        assert_eq!(delta, 0, "counter {name} differs between schedulers");
    }
}

/// Same-tick batching contract: coalescing same-instant same-link
/// deliveries into one queue pass must leave every observable —
/// delivery traces, timer logs, counter totals — byte-identical to the
/// unbatched baseline, while actually batching something.
#[test]
fn batched_delivery_is_byte_identical_to_baseline() {
    let batched_cfg = EngineConfig {
        batched_delivery: true,
        ..EngineConfig::baseline()
    };
    assert_eq!(
        echo_mesh_trace(batched_cfg),
        echo_mesh_trace(EngineConfig::baseline()),
        "batching must not change the echo-mesh trace"
    );
    assert_eq!(
        faulted_mesh_trace(batched_cfg),
        faulted_mesh_trace(EngineConfig::baseline()),
        "batching must not change the faulted trace"
    );
    // Serialization times round up to ≥1 ns, so back-to-back packets never
    // share an arrival tick — but duplication faults deliver a twin at the
    // *same* instant over the same link, exercising the batch loop for
    // real: every twin coalesces into its original's dispatch.
    let burst = |engine: EngineConfig| {
        let mut sim = Sim::with_engine(17, engine);
        let a = sim.add_agent(Box::new(Echo::new()));
        let b = sim.add_agent(Box::new(Echo::new()));
        let spec = LinkSpec::clean(Bandwidth::from_mbps(100), Duration::from_millis(5))
            .with_faults(FaultPlan::new().with_duplicate(1.0));
        let ab = sim.add_half_link(a, b, spec);
        sim.with_agent_ctx::<Echo, _>(a, |_, ctx| {
            for _ in 0..64 {
                ctx.send(ab, Packet::opaque(FlowId(1), a, b, 1200));
            }
        });
        sim.run_to_completion();
        let got = sim.agent::<Echo>(b).got.clone();
        let batched = sim
            .metrics()
            .snapshot()
            .get(simtrace::names::NET_SCHED_BATCHED)
            .unwrap_or(0);
        (got, batched)
    };
    let (got_batched, n_batched) = burst(batched_cfg);
    let (got_plain, n_plain) = burst(EngineConfig::baseline());
    assert_eq!(got_batched, got_plain, "burst trace must match");
    assert!(
        n_batched > 50,
        "same-instant burst must actually coalesce ({n_batched})"
    );
    assert_eq!(n_plain, 0, "baseline must never batch");
}

#[test]
fn far_timers_cascade_and_fire_in_order() {
    let mut sim = Sim::new(1);
    let a = sim.add_agent(Box::new(Echo::new()));
    sim.with_agent_ctx::<Echo, _>(a, |_, ctx| {
        // Spread across seconds: far beyond the wheel window, forcing the
        // overflow heap and cascade path.
        for i in (0..40u64).rev() {
            ctx.set_timer(SimTime::from_millis(i * 400), i);
        }
    });
    sim.run_to_completion();
    let tokens: Vec<u64> = sim.agent::<Echo>(a).timer_log.iter().map(|t| t.1).collect();
    assert_eq!(tokens, (0..40).collect::<Vec<_>>());
    let cascades = sim
        .metrics()
        .snapshot()
        .get(simtrace::names::NET_SCHED_CASCADES)
        .unwrap_or(0);
    assert!(cascades > 0, "far timers must go through the overflow heap");
}

#[test]
fn run_until_across_idle_stretches() {
    // Deadlines far past the last event leave `now` well ahead of the
    // wheel cursor; scheduling afterwards must still dispatch correctly.
    let mut sim = Sim::new(1);
    let a = sim.add_agent(Box::new(Echo::new()));
    sim.with_agent_ctx::<Echo, _>(a, |_, ctx| {
        ctx.set_timer(SimTime::from_millis(1), 1);
    });
    sim.run_until(SimTime::from_secs(10));
    assert_eq!(sim.now(), SimTime::from_secs(10));
    sim.with_agent_ctx::<Echo, _>(a, |_, ctx| {
        ctx.set_timer(SimTime::from_secs(11), 2);
        ctx.set_timer(SimTime::from_millis(10_500), 3);
    });
    sim.run_until(SimTime::from_secs(20));
    let log = &sim.agent::<Echo>(a).timer_log;
    assert_eq!(
        log,
        &vec![
            (SimTime::from_millis(1), 1),
            (SimTime::from_millis(10_500), 3),
            (SimTime::from_secs(11), 2),
        ]
    );
}

/// Endpoint pair exchanging typed payloads through the pool-aware path.
struct PoolPing {
    out: Option<LinkId>,
    replies: u32,
    seen: Vec<u64>,
}

impl Agent for PoolPing {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let (val, meta) = ctx.take_payload::<u64>(pkt).expect("typed payload");
        self.seen.push(val);
        if let Some(out) = self.out {
            if self.replies > 0 {
                self.replies -= 1;
                let boxed = ctx.alloc_payload(val + 1);
                ctx.send(
                    out,
                    Packet::with_boxed_payload(meta.flow, meta.dst, meta.src, meta.size, boxed),
                );
            }
        }
    }
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn payload_pool_recycles_on_the_echo_path() {
    let run = |engine: EngineConfig| {
        let mut sim = Sim::with_engine(3, engine);
        let a = sim.add_agent(Box::new(PoolPing {
            out: None,
            replies: 0,
            seen: Vec::new(),
        }));
        let b = sim.add_agent(Box::new(PoolPing {
            out: None,
            replies: 100,
            seen: Vec::new(),
        }));
        let spec = LinkSpec::clean(Bandwidth::from_mbps(10), Duration::from_millis(2));
        let (ab, ba) = sim.add_link(a, b, spec.clone(), spec);
        sim.agent_mut::<PoolPing>(a).out = Some(ab);
        sim.agent_mut::<PoolPing>(a).replies = 100;
        sim.agent_mut::<PoolPing>(b).out = Some(ba);
        sim.with_agent_ctx::<PoolPing, _>(a, |_, ctx| {
            let boxed = ctx.alloc_payload(0u64);
            ctx.send(ab, Packet::with_boxed_payload(FlowId(1), a, b, 500, boxed));
        });
        sim.run_to_completion();
        let snap = sim.metrics().snapshot();
        (
            sim.agent::<PoolPing>(b).seen.clone(),
            snap.get(simtrace::names::NET_POOL_HITS).unwrap_or(0),
        )
    };
    let (seen_pooled, hits) = run(EngineConfig::default());
    let (seen_plain, no_hits) = run(EngineConfig::baseline());
    assert_eq!(seen_pooled, seen_plain, "pooling must be value-transparent");
    assert!(
        hits > 50,
        "steady-state ping-pong must reuse boxes ({hits})"
    );
    assert_eq!(no_hits, 0, "disabled pool must never hit");
}
