//! The Internet-scale scenario matrix (paper §6.1, Figs. 17/18).
//!
//! The paper deploys 7 servers (3 Google DCs, 3 Oracle DCs, one NZ campus
//! host) and 4 client last-hop technologies (5G and wired in Sweden, WiFi
//! and 4G in New Zealand), giving 28 path scenarios. We cannot measure
//! those paths, so each scenario is a *calibrated parameter set*:
//! geodesic-plausible RTTs, technology-typical access rates, jitter and
//! buffer depths. Absolute numbers are stand-ins; what matters for the
//! reproduction is the *spread* — RTT from tens to hundreds of ms,
//! bandwidth from tens to hundreds of Mbps, wired vs. wireless jitter —
//! which brackets the paper's conditions.

use netsim::{Bandwidth, JitterModel, LinkSpec};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Server deployment sites (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerSite {
    /// Google data center, eastern United States.
    GoogleUsEast,
    /// Google data center, Tokyo.
    GoogleTokyo,
    /// Google data center, Singapore.
    GoogleSingapore,
    /// Oracle data center, western United States.
    OracleUsWest,
    /// Oracle data center, Sydney.
    OracleSydney,
    /// Oracle data center, London.
    OracleLondon,
    /// Stand-alone server on a New Zealand campus network.
    NzCampus,
}

impl ServerSite {
    /// All seven sites, in the paper's figure order.
    pub const ALL: [ServerSite; 7] = [
        ServerSite::OracleUsWest,
        ServerSite::OracleSydney,
        ServerSite::OracleLondon,
        ServerSite::GoogleUsEast,
        ServerSite::GoogleTokyo,
        ServerSite::GoogleSingapore,
        ServerSite::NzCampus,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            ServerSite::GoogleUsEast => "google-us-east",
            ServerSite::GoogleTokyo => "google-tokyo",
            ServerSite::GoogleSingapore => "google-singapore",
            ServerSite::OracleUsWest => "oracle-us-west",
            ServerSite::OracleSydney => "oracle-sydney",
            ServerSite::OracleLondon => "oracle-london",
            ServerSite::NzCampus => "nz-campus",
        }
    }

    /// One-way WAN propagation delay from this site to the client's
    /// region (geodesic-plausible calibration).
    fn one_way_ms(self, client: ClientRegion) -> u64 {
        match (self, client) {
            (ServerSite::OracleLondon, ClientRegion::Sweden) => 15,
            (ServerSite::GoogleUsEast, ClientRegion::Sweden) => 55,
            (ServerSite::OracleUsWest, ClientRegion::Sweden) => 80,
            (ServerSite::GoogleTokyo, ClientRegion::Sweden) => 125,
            (ServerSite::GoogleSingapore, ClientRegion::Sweden) => 145,
            (ServerSite::OracleSydney, ClientRegion::Sweden) => 160,
            (ServerSite::NzCampus, ClientRegion::Sweden) => 170,
            (ServerSite::NzCampus, ClientRegion::NewZealand) => 5,
            (ServerSite::OracleSydney, ClientRegion::NewZealand) => 20,
            (ServerSite::GoogleSingapore, ClientRegion::NewZealand) => 70,
            (ServerSite::GoogleTokyo, ClientRegion::NewZealand) => 90,
            (ServerSite::OracleUsWest, ClientRegion::NewZealand) => 65,
            (ServerSite::GoogleUsEast, ClientRegion::NewZealand) => 100,
            (ServerSite::OracleLondon, ClientRegion::NewZealand) => 140,
        }
    }
}

/// Client regions (paper: Sweden for 5G/wired, NZ for WiFi/4G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClientRegion {
    /// Sweden (5G and wired clients).
    Sweden,
    /// New Zealand (WiFi and 4G clients).
    NewZealand,
}

/// Last-hop access technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LastHop {
    /// 5G cellular (Sweden).
    FiveG,
    /// Wired Ethernet (Sweden).
    Wired,
    /// WiFi (New Zealand).
    WiFi,
    /// 4G cellular (New Zealand).
    FourG,
}

impl LastHop {
    /// All four technologies, in the paper's column order.
    pub const ALL: [LastHop; 4] = [
        LastHop::FiveG,
        LastHop::Wired,
        LastHop::WiFi,
        LastHop::FourG,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            LastHop::FiveG => "5G",
            LastHop::Wired => "wired",
            LastHop::WiFi => "wifi",
            LastHop::FourG => "4G",
        }
    }

    /// The client region this technology is deployed in (paper §6.1).
    pub fn region(self) -> ClientRegion {
        match self {
            LastHop::FiveG | LastHop::Wired => ClientRegion::Sweden,
            LastHop::WiFi | LastHop::FourG => ClientRegion::NewZealand,
        }
    }

    /// Technology-typical access parameters:
    /// (bottleneck rate, jitter std, jitter correlation, buffer in BDP).
    fn access_params(self) -> (Bandwidth, Duration, f64, f64) {
        match self {
            // 5G: fast but variable; moderate buffers.
            LastHop::FiveG => (
                Bandwidth::from_mbps(250),
                Duration::from_micros(1500),
                0.5,
                1.0,
            ),
            // Wired: fast and clean.
            LastHop::Wired => (
                Bandwidth::from_mbps(300),
                Duration::from_micros(100),
                0.0,
                1.0,
            ),
            // WiFi: moderate rate, bursty contention jitter.
            LastHop::WiFi => (
                Bandwidth::from_mbps(80),
                Duration::from_micros(2500),
                0.3,
                1.5,
            ),
            // 4G: slower, high correlated jitter, famously deep buffers.
            // 45 Mbps matches contemporary LTE-A downlink medians in the
            // paper's measurement region (NZ); at 30 Mbps a multi-MB
            // transfer is serialization-dominated and the slow-start phase
            // the paper measures barely registers in the FCT.
            LastHop::FourG => (
                Bandwidth::from_mbps(45),
                Duration::from_micros(4000),
                0.6,
                3.0,
            ),
        }
    }
}

/// One end-to-end path scenario (server site × last hop).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathScenario {
    /// Server location.
    pub site: ServerSite,
    /// Client access technology.
    pub last_hop: LastHop,
    /// Bottleneck (access) bandwidth.
    pub bottleneck: Bandwidth,
    /// One-way propagation delay on the data direction.
    pub one_way: Duration,
    /// Per-packet jitter standard deviation on the data direction.
    pub jitter_std: Duration,
    /// Jitter correlation.
    pub jitter_corr: f64,
    /// Bottleneck buffer in BDP multiples.
    pub buffer_bdp: f64,
}

impl PathScenario {
    /// Build the scenario for a server/last-hop combination.
    pub fn new(site: ServerSite, last_hop: LastHop) -> Self {
        let (bw, jitter_std, jitter_corr, buffer_bdp) = last_hop.access_params();
        let one_way = Duration::from_millis(site.one_way_ms(last_hop.region()) + 4);
        PathScenario {
            site,
            last_hop,
            bottleneck: bw,
            one_way,
            jitter_std,
            jitter_corr,
            buffer_bdp,
        }
    }

    /// The full 28-scenario matrix (7 sites × 4 last hops), row-major in
    /// the paper's Fig. 18 layout.
    pub fn matrix() -> Vec<PathScenario> {
        let mut v = Vec::with_capacity(28);
        for site in ServerSite::ALL {
            for hop in LastHop::ALL {
                v.push(PathScenario::new(site, hop));
            }
        }
        v
    }

    /// Human-readable scenario id, e.g. `google-tokyo/4G`.
    pub fn id(&self) -> String {
        format!("{}/{}", self.site.label(), self.last_hop.label())
    }

    /// Canonical parameter string for cache identities: every physics
    /// field that influences a simulation on this path, in a stable
    /// order and encoding. Field *values* are encoded (not just the
    /// site/hop names), so a scenario with an overridden field — e.g.
    /// the loss experiment's shallow-buffer variant — hashes differently
    /// from the stock scenario, and recalibrating a technology's
    /// parameters invalidates exactly that technology's cached cells.
    pub fn canonical_params(&self) -> String {
        format!(
            "site={} hop={} bw_bps={} ow_ns={} jstd_ns={} jcorr={} buf_bdp={}",
            self.site.label(),
            self.last_hop.label(),
            self.bottleneck.as_bps(),
            self.one_way.as_nanos(),
            self.jitter_std.as_nanos(),
            self.jitter_corr,
            self.buffer_bdp,
        )
    }

    /// Path round-trip propagation time (no queueing).
    pub fn min_rtt(&self) -> Duration {
        2 * self.one_way
    }

    /// Link spec for the data direction (server → client): the shaped
    /// bottleneck with the access technology's jitter and buffer.
    pub fn data_link(&self) -> LinkSpec {
        let jitter = if self.jitter_std.is_zero() {
            JitterModel::none()
        } else {
            JitterModel::correlated(self.jitter_std, self.jitter_corr)
        };
        LinkSpec::clean(self.bottleneck, self.one_way)
            .with_jitter(jitter)
            .with_queue_bdp(self.min_rtt(), self.buffer_bdp)
    }

    /// Link spec for the ACK direction (client → server): clean and fast
    /// (ACK paths are rarely the bottleneck for downloads).
    pub fn ack_link(&self) -> LinkSpec {
        LinkSpec::clean(Bandwidth::from_mbps(1000), self.one_way)
    }

    /// The path BDP in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        self.bottleneck.bdp_bytes(self.min_rtt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_28_unique_scenarios() {
        let m = PathScenario::matrix();
        assert_eq!(m.len(), 28);
        let ids: std::collections::HashSet<String> = m.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), 28);
    }

    #[test]
    fn regions_follow_paper_assignment() {
        assert_eq!(LastHop::FiveG.region(), ClientRegion::Sweden);
        assert_eq!(LastHop::Wired.region(), ClientRegion::Sweden);
        assert_eq!(LastHop::WiFi.region(), ClientRegion::NewZealand);
        assert_eq!(LastHop::FourG.region(), ClientRegion::NewZealand);
    }

    #[test]
    fn rtt_spread_brackets_paper_conditions() {
        let m = PathScenario::matrix();
        let min = m.iter().map(|s| s.min_rtt()).min().unwrap();
        let max = m.iter().map(|s| s.min_rtt()).max().unwrap();
        assert!(min <= Duration::from_millis(30), "shortest path {min:?}");
        assert!(max >= Duration::from_millis(250), "longest path {max:?}");
    }

    #[test]
    fn nz_campus_to_nz_client_is_short() {
        let s = PathScenario::new(ServerSite::NzCampus, LastHop::WiFi);
        assert!(s.min_rtt() <= Duration::from_millis(20));
    }

    #[test]
    fn fourg_has_deepest_buffer_and_most_jitter() {
        let fourg = PathScenario::new(ServerSite::GoogleTokyo, LastHop::FourG);
        let wired = PathScenario::new(ServerSite::GoogleTokyo, LastHop::Wired);
        assert!(fourg.buffer_bdp > wired.buffer_bdp);
        assert!(fourg.jitter_std > wired.jitter_std);
        assert!(fourg.bottleneck < wired.bottleneck);
    }

    #[test]
    fn link_specs_are_consistent() {
        let s = PathScenario::new(ServerSite::GoogleTokyo, LastHop::FourG);
        let data = s.data_link();
        assert_eq!(data.rate.base_rate(), s.bottleneck);
        assert_eq!(data.delay, s.one_way);
        assert!(data.queue_bytes >= s.bdp_bytes(), "deep buffer expected");
        let ack = s.ack_link();
        assert_eq!(ack.delay, s.one_way);
    }

    #[test]
    fn id_format() {
        let s = PathScenario::new(ServerSite::OracleLondon, LastHop::FiveG);
        assert_eq!(s.id(), "oracle-london/5G");
    }

    #[test]
    fn canonical_params_encode_field_values() {
        let s = PathScenario::new(ServerSite::OracleLondon, LastHop::FiveG);
        let base = s.canonical_params();
        assert!(base.contains("site=oracle-london"));
        assert!(base.contains("bw_bps=250000000"));
        // An overridden field must change the encoding even though the
        // site/hop names are unchanged (the loss experiment relies on
        // this for correct cache identity).
        let mut shallow = s;
        shallow.buffer_bdp = 0.5;
        assert_ne!(base, shallow.canonical_params());
        // Stable across calls.
        assert_eq!(base, s.canonical_params());
    }
}
