#!/usr/bin/env bash
# The full pre-merge gate: build, tests, lints, formatting.
# Usage: scripts/check.sh (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "All checks passed."
