//! Plain-text table and CSV emission for experiment binaries.
//!
//! Every `fig*`/`table1` binary prints the same rows/series the paper
//! reports; these helpers keep the formatting consistent.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, row: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", row[i], width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180-lite: quote cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a byte count the way the paper labels sizes (kB/MB).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1_000_000 {
        let mb = b as f64 / 1e6;
        if (mb - mb.round()).abs() < 1e-9 {
            format!("{}MB", mb.round() as u64)
        } else {
            format!("{mb:.1}MB")
        }
    } else if b >= 1_000 {
        format!("{}kB", b / 1_000)
    } else {
        format!("{b}B")
    }
}

/// Format seconds with milliseconds precision.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.3}s")
}

/// Format a ratio as a signed percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["size", "fct"]);
        t.row(vec!["1MB", "0.500s"]);
        t.row(vec!["12MB", "2.100s"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size") && lines[0].contains("fct"));
        assert!(lines[2].trim_start().starts_with("1MB"));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(vec!["id", "note"]);
        t.row(vec!["x", "hello, world"]);
        t.row(vec!["y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_bytes(500), "500B");
        assert_eq!(fmt_bytes(64_000), "64kB");
        assert_eq!(fmt_bytes(2_000_000), "2MB");
        assert_eq!(fmt_bytes(2_500_000), "2.5MB");
        assert_eq!(fmt_secs(1.23456), "1.235s");
        assert_eq!(fmt_pct(0.215), "+21.5%");
        assert_eq!(fmt_pct(-0.03), "-3.0%");
    }
}
