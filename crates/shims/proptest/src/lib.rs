//! # proptest (shim) — deterministic property-test sampling
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the slice of the proptest API this workspace's property tests use:
//! range strategies over the numeric types, tuples of strategies,
//! `prop::collection::vec`, `prop_map`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each property runs a fixed
//! number of cases drawn from a generator seeded by the test's name, so
//! failures reproduce exactly across runs and machines. The failure
//! message includes the case number and the generated inputs' `Debug`
//! rendering.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Number of cases each `proptest!` property runs.
pub const CASES: u32 = 96;

/// A failed property case (what `prop_assert!` returns).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator backing every strategy draw (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name, so each property has a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Pick uniformly among boxed strategies (the `prop_oneof!` backend).
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> OneOf<T> {
    /// Build from the macro's arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt;
        use std::ops::Range;

        /// Strategy for vectors with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            inner: S,
            len: Range<usize>,
        }

        /// `vec(strategy, min..max)` — vectors of `strategy` draws.
        pub fn vec<S: Strategy>(inner: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { inner, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.inner.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, OneOf, Strategy, TestCaseError,
        TestRng,
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va == vb,
            "{} == {}: {:?} vs {:?}",
            stringify!($a),
            stringify!($b),
            va,
            vb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va == vb,
            "{} == {}: {:?} vs {:?} ({})",
            stringify!($a),
            stringify!($b),
            va,
            vb,
            format!($($fmt)+)
        );
    }};
}

/// Uniformly choose among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// Define property tests: each named function runs [`CASES`](crate::CASES)
/// deterministic cases of its body with inputs drawn from the given
/// strategies.
#[macro_export]
macro_rules! proptest {
    ($(#[$meta:meta] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[$meta]
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(e) = run() {
                        panic!("property {} failed at case {}/{}: {}\n  inputs: {}",
                               stringify!($name), case + 1, $crate::CASES, e, inputs);
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let x = Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&x));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::from_name("lens");
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0u64..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn shim_proptest_macro_works(x in 1u64..100, y in 0.0f64..1.0) {
            prop_assert!(x >= 1);
            prop_assert!(y < 1.0);
            prop_assert_eq!(x, x);
        }
    }
}
