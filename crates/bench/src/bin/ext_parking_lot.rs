//! Extension: SUSS across stacked bottlenecks (parking-lot topology).

use experiments::extensions::parking_lot_probe;
use suss_bench::BinOpts;

fn main() {
    let o = BinOpts::from_args();
    let (hops, size) = if o.quick {
        (2usize, workload::MB)
    } else {
        (4usize, 2 * workload::MB)
    };
    let t = parking_lot_probe(hops, size, 1);
    o.emit(
        &format!("Extension — short flow across {hops} stacked bottlenecks"),
        &t,
    );
}
