//! Convenience wiring: install a sender/receiver pair into a simulation.

use crate::cc::CongestionControl;
use crate::receiver::{AckPolicy, ReceiverEndpoint};
use crate::sender::{SenderConfig, SenderEndpoint};
use netsim::{FlowId, LinkId, NodeId, Sim};

/// Handles to an installed flow's endpoints.
#[derive(Debug, Clone, Copy)]
pub struct FlowEnds {
    /// The flow id.
    pub flow: FlowId,
    /// Node id of the sending endpoint (`SenderEndpoint`).
    pub sender: NodeId,
    /// Node id of the receiving endpoint (`ReceiverEndpoint`).
    pub receiver: NodeId,
}

/// Register a sender/receiver pair for one flow and cross-wire their peer
/// ids. Egress links must still be wired after topology construction with
/// [`wire_flow`].
pub fn install_flow(
    sim: &mut Sim,
    flow: FlowId,
    cfg: SenderConfig,
    cc: Box<dyn CongestionControl>,
    policy: AckPolicy,
) -> FlowEnds {
    let sender = sim.add_agent(Box::new(SenderEndpoint::new(cfg, flow, cc)));
    let receiver = sim.add_agent(Box::new(ReceiverEndpoint::new(flow, policy)));
    let registry = sim.metrics().clone();
    sim.agent_mut::<SenderEndpoint>(sender)
        .bind_metrics(&registry);
    sim.agent_mut::<SenderEndpoint>(sender).set_peer(receiver);
    sim.agent_mut::<ReceiverEndpoint>(receiver).set_peer(sender);
    FlowEnds {
        flow,
        sender,
        receiver,
    }
}

/// Wire each endpoint's egress half-link (sender→network, receiver→network).
pub fn wire_flow(sim: &mut Sim, ends: FlowEnds, sender_egress: LinkId, receiver_egress: LinkId) {
    sim.agent_mut::<SenderEndpoint>(ends.sender)
        .set_egress(sender_egress);
    sim.agent_mut::<ReceiverEndpoint>(ends.receiver)
        .set_egress(receiver_egress);
}

/// Install a new flow into the *retired* endpoint slots of an earlier one
/// (the spawn half of dynamic flow lifecycle): node ids, attached links,
/// and routes are reused, so per-flow memory stays O(concurrent flows)
/// however many flows a workload generates. Both slots must have been
/// emptied with [`Sim::retire_agent`] first; in-flight events addressed
/// to the old occupants die as orphans, and stale packets are further
/// filtered by the (strictly increasing) flow id.
pub fn respawn_flow(
    sim: &mut Sim,
    slots: FlowEnds,
    flow: FlowId,
    cfg: SenderConfig,
    cc: Box<dyn CongestionControl>,
    policy: AckPolicy,
) -> FlowEnds {
    let ends = FlowEnds {
        flow,
        sender: slots.sender,
        receiver: slots.receiver,
    };
    sim.install_agent_at(ends.sender, Box::new(SenderEndpoint::new(cfg, flow, cc)));
    sim.install_agent_at(ends.receiver, Box::new(ReceiverEndpoint::new(flow, policy)));
    let registry = sim.metrics().clone();
    sim.agent_mut::<SenderEndpoint>(ends.sender)
        .bind_metrics(&registry);
    sim.agent_mut::<SenderEndpoint>(ends.sender)
        .set_peer(ends.receiver);
    sim.agent_mut::<ReceiverEndpoint>(ends.receiver)
        .set_peer(ends.sender);
    ends
}

/// Tear a flow down: retire both endpoint agents, freeing their state and
/// invalidating their pending timers, and return the receiver's completion
/// instant (`None` if the flow never finished). Read any per-flow stats
/// you need via [`Sim::agent`] *before* calling this; aggregate stats
/// survive in the simulation's metric registry.
pub fn teardown_flow(sim: &mut Sim, ends: FlowEnds) -> Option<netsim::SimTime> {
    let completed_at = sim.agent::<ReceiverEndpoint>(ends.receiver).completed_at();
    drop(sim.retire_agent(ends.sender));
    drop(sim.retire_agent(ends.receiver));
    completed_at
}

/// Whether the flow has completed (receiver has the full byte stream).
pub fn flow_complete(sim: &Sim, ends: FlowEnds) -> bool {
    sim.agent::<ReceiverEndpoint>(ends.receiver)
        .completed_at()
        .is_some()
}
