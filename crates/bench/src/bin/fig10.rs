//! Figure 10: total delivered data with SUSS on vs. off.

use experiments::fig09::{run, Fig09Params};
use netsim::SimTime;
use suss_bench::BenchCli;

fn main() {
    let o = BenchCli::parse("fig10");
    let p = if o.quick {
        Fig09Params::quick()
    } else {
        Fig09Params::paper()
    };
    let r = run(&p);
    o.emit(
        &format!("Fig. 10 — delivered data on {}", r.scenario.id()),
        &r.to_delivered_table(),
    );
    let probe = if o.quick {
        SimTime::from_secs(1)
    } else {
        SimTime::from_secs(2)
    };
    println!(
        "delivered ratio (on/off) at {}: {:.2}x",
        probe,
        r.delivered_ratio(probe)
    );
    let to_pts = |o: &experiments::FlowOutcome| -> Vec<(f64, f64)> {
        o.trace
            .samples
            .iter()
            .map(|s| (s.t.as_secs_f64(), s.delivered as f64 / 1e6))
            .collect()
    };
    let (on, off) = (to_pts(&r.suss_on), to_pts(&r.suss_off));
    println!();
    print!(
        "{}",
        simstats::ascii_chart(
            &[("suss-on", &on), ("suss-off", &off)],
            72,
            16,
            "t(s)",
            "delivered(MB)"
        )
    );
}
