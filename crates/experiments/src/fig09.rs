//! Figures 9 & 10: cwnd/RTT dynamics and total delivered data with SUSS
//! on vs. off on a 4G path (US-east server → NZ 4G client).
//!
//! The paper's observations, which this module's tests assert:
//! * SUSS reaches the slow-start exit cwnd in roughly half the time;
//! * both variants exit exponential growth at about the same cwnd;
//! * RTT stays flat during the accelerated rounds (pacing absorbs the
//!   extra packets);
//! * total delivered data at t = 2 s is a multiple of the SUSS-off run.

use crate::runner::{run_flow, FlowOutcome, MSS};
use cc_algos::CcKind;
use netsim::SimTime;
use simstats::TextTable;
use workload::{LastHop, PathScenario, ServerSite};

/// Parameters for the Fig. 9/10 experiment.
#[derive(Debug, Clone)]
pub struct Fig09Params {
    /// Transfer size (long enough to pass slow start).
    pub flow_bytes: u64,
    /// Plot horizon.
    pub horizon: SimTime,
    /// Plot resolution.
    pub points: usize,
    /// Seed.
    pub seed: u64,
}

impl Fig09Params {
    /// Full-scale run.
    pub fn paper() -> Self {
        Fig09Params {
            flow_bytes: 40_000_000,
            horizon: SimTime::from_secs(10),
            points: 40,
            seed: 1,
        }
    }

    /// Scaled-down variant.
    pub fn quick() -> Self {
        Fig09Params {
            flow_bytes: 6_000_000,
            horizon: SimTime::from_secs(3),
            points: 12,
            seed: 1,
        }
    }
}

/// Result: the two traced runs.
#[derive(Debug)]
pub struct Fig09Result {
    /// The 4G path used.
    pub scenario: PathScenario,
    /// CUBIC with SUSS on.
    pub suss_on: FlowOutcome,
    /// CUBIC with SUSS off.
    pub suss_off: FlowOutcome,
    /// Parameters.
    pub params: Fig09Params,
}

/// Run the experiment.
pub fn run(params: &Fig09Params) -> Fig09Result {
    let scenario = PathScenario::new(ServerSite::GoogleUsEast, LastHop::FourG);
    Fig09Result {
        suss_on: run_flow(
            &scenario,
            CcKind::CubicSuss,
            params.flow_bytes,
            params.seed,
            true,
        ),
        suss_off: run_flow(
            &scenario,
            CcKind::Cubic,
            params.flow_bytes,
            params.seed,
            true,
        ),
        scenario,
        params: params.clone(),
    }
}

impl Fig09Result {
    /// Time for cwnd to first reach `segs` segments, per variant.
    pub fn time_to_cwnd(&self, out: &FlowOutcome, segs: u64) -> Option<SimTime> {
        out.trace
            .samples
            .iter()
            .find(|s| s.cwnd >= segs * MSS)
            .map(|s| s.t)
    }

    /// Fig. 9 series: cwnd (segments) and RTT (ms) over time.
    pub fn to_table(&self) -> TextTable {
        let c_on = self.suss_on.cwnd_series();
        let c_off = self.suss_off.cwnd_series();
        let r_on = self.suss_on.rtt_series();
        let r_off = self.suss_off.rtt_series();
        let base_rtt = self.scenario.min_rtt().as_secs_f64() * 1e3;
        let mut t = TextTable::new(vec![
            "t(s)",
            "cwnd-on(seg)",
            "cwnd-off(seg)",
            "rtt-on(ms)",
            "rtt-off(ms)",
        ]);
        for k in 0..=self.params.points {
            let ts = SimTime::from_nanos(
                self.params.horizon.as_nanos() * k as u64 / self.params.points as u64,
            );
            t.row(vec![
                format!("{:.2}", ts.as_secs_f64()),
                format!("{:.0}", c_on.value_at(ts, 10.0)),
                format!("{:.0}", c_off.value_at(ts, 10.0)),
                format!("{:.1}", r_on.value_at(ts, base_rtt)),
                format!("{:.1}", r_off.value_at(ts, base_rtt)),
            ]);
        }
        t
    }

    /// Fig. 10 series: delivered MB over time plus the ratio at 2 s.
    pub fn to_delivered_table(&self) -> TextTable {
        let d_on = self.suss_on.delivered_series();
        let d_off = self.suss_off.delivered_series();
        let mut t = TextTable::new(vec!["t(s)", "delivered-on(MB)", "delivered-off(MB)"]);
        for k in 0..=self.params.points {
            let ts = SimTime::from_nanos(
                self.params.horizon.as_nanos() * k as u64 / self.params.points as u64,
            );
            t.row(vec![
                format!("{:.2}", ts.as_secs_f64()),
                format!("{:.2}", d_on.value_at(ts, 0.0) / 1e6),
                format!("{:.2}", d_off.value_at(ts, 0.0) / 1e6),
            ]);
        }
        t
    }

    /// Delivered-bytes ratio (on/off) at time `t`.
    pub fn delivered_ratio(&self, t: SimTime) -> f64 {
        let on = self.suss_on.delivered_series().value_at(t, 0.0);
        let off = self.suss_off.delivered_series().value_at(t, 0.0);
        if off <= 0.0 {
            f64::NAN
        } else {
            on / off
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suss_halves_ramp_time_without_rtt_cost() {
        let r = run(&Fig09Params::quick());
        // Both exit slow start; exit cwnds comparable (Fig. 9 top).
        let (e_on, e_off) = (
            r.suss_on.exit_cwnd.expect("suss-on exits"),
            r.suss_off.exit_cwnd.expect("suss-off exits"),
        );
        let ratio = e_on as f64 / e_off as f64;
        assert!((0.6..=1.6).contains(&ratio), "exit cwnd ratio {ratio:.2}");

        // SUSS reaches a mid-slow-start cwnd substantially sooner.
        let probe = (e_off / MSS).min(e_on / MSS) / 2;
        let t_on = r.time_to_cwnd(&r.suss_on, probe).unwrap();
        let t_off = r.time_to_cwnd(&r.suss_off, probe).unwrap();
        assert!(
            t_on.as_secs_f64() <= 0.75 * t_off.as_secs_f64(),
            "ramp time on {t_on} vs off {t_off}"
        );

        // Delivered ratio early in the transfer is well above 1 (the paper
        // reports ~3x at 2 s on its slower real-world path; the exact
        // instant depends on path speed, so probe 1 s here).
        let ratio = r.delivered_ratio(SimTime::from_secs(1));
        assert!(ratio > 1.4, "delivered ratio at 1 s: {ratio:.2}");

        // RTT flat in early rounds: max RTT within the first second close
        // between the runs.
        let early = SimTime::from_secs(1);
        let max_rtt = |o: &FlowOutcome| {
            o.trace
                .samples
                .iter()
                .take_while(|s| s.t <= early)
                .filter_map(|s| s.rtt)
                .max()
                .unwrap()
        };
        let (m_on, m_off) = (max_rtt(&r.suss_on), max_rtt(&r.suss_off));
        assert!(
            m_on.as_secs_f64() <= m_off.as_secs_f64() * 1.2,
            "early max RTT on {m_on:?} vs off {m_off:?}"
        );
    }
}
