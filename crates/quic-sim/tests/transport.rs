//! End-to-end transport tests: the QUIC endpoints complete flows on the
//! netsim engine, under every `cc-algos` controller through the
//! `QuicController` adapter (the adapter round-trip), with working loss
//! recovery, SUSS acceleration, and deterministic results.

use cc_algos::{make_quic_controller, CcKind};
use netsim::{Bandwidth, EngineConfig, FlowId, LinkSpec, Sim, SimTime};
use quic_sim::{
    install_quic_flow, wire_quic_flow, PacingStrategy, QuicConfig, QuicReceiver, QuicSender,
};
use std::time::Duration;

const MSS: u64 = 1_448;
const IW: u64 = 10 * MSS;

struct RunResult {
    fct: Option<Duration>,
    pkts_sent: u64,
    pkts_retransmitted: u64,
    pkts_lost: u64,
    ptos: u64,
    suss_pacings: usize,
    counters: simtrace::CounterSnapshot,
}

/// One QUIC download over a symmetric clean-ish path.
#[allow(clippy::too_many_arguments)]
fn run_quic(
    kind: CcKind,
    flow_bytes: u64,
    seed: u64,
    strategy: PacingStrategy,
    loss: f64,
    queue_bytes: u64,
    engine: EngineConfig,
    tracing: bool,
) -> RunResult {
    let mut sim = Sim::with_engine(seed, engine);
    let mut cfg = QuicConfig::bulk(flow_bytes).with_strategy(strategy);
    cfg.trace_sampling = tracing;
    let ends = install_quic_flow(
        &mut sim,
        FlowId(1),
        cfg,
        make_quic_controller(kind, IW, MSS),
    );
    let data = LinkSpec::clean(Bandwidth::from_mbps(50), Duration::from_millis(25))
        .with_loss(loss)
        .with_queue_bytes(queue_bytes);
    let ack = LinkSpec::clean(Bandwidth::from_mbps(50), Duration::from_millis(25));
    let s2r = sim.add_half_link(ends.sender, ends.receiver, data);
    let r2s = sim.add_half_link(ends.receiver, ends.sender, ack);
    wire_quic_flow(&mut sim, ends, s2r, r2s);

    sim.run_while(SimTime::from_secs(120), |sim| {
        !sim.agent::<QuicSender>(ends.sender).is_done()
    });

    let started = {
        let snd = sim.agent::<QuicSender>(ends.sender);
        snd.stats.started_at.unwrap_or(SimTime::ZERO)
    };
    let rcv_done = sim.agent::<QuicReceiver>(ends.receiver).completed_at();
    let snd = sim.agent::<QuicSender>(ends.sender);
    RunResult {
        fct: rcv_done.map(|t| t.saturating_since(started)),
        pkts_sent: snd.stats.pkts_sent,
        pkts_retransmitted: snd.stats.pkts_retransmitted,
        pkts_lost: snd.stats.pkts_lost,
        ptos: snd.stats.ptos,
        suss_pacings: snd
            .trace
            .events
            .iter()
            .filter(|(_, e)| matches!(e, tcp_sim::trace::TraceEvent::SussPacing { .. }))
            .count(),
        counters: sim.metrics().snapshot(),
    }
}

#[test]
fn every_controller_completes_a_clean_flow() {
    // The adapter round-trip: each cc-algos controller drives the QUIC
    // transport end to end through `QuicController` alone.
    for kind in [
        CcKind::Reno,
        CcKind::Cubic,
        CcKind::CubicSuss,
        CcKind::CubicHspp,
        CcKind::Bbr,
        CcKind::Bbr2,
        CcKind::BbrSuss,
    ] {
        let out = run_quic(
            kind,
            2_000_000,
            7,
            PacingStrategy::PerPacket,
            0.0,
            u64::MAX,
            EngineConfig::default(),
            false,
        );
        let fct = out
            .fct
            .unwrap_or_else(|| panic!("{kind:?} did not complete"));
        assert!(fct < Duration::from_secs(10), "{kind:?} fct {fct:?}");
        assert_eq!(out.pkts_retransmitted, 0, "{kind:?} clean path");
        assert_eq!(out.pkts_lost, 0, "{kind:?}");
        assert!(out.pkts_sent >= 2_000_000 / MSS, "{kind:?}");
    }
}

#[test]
fn loss_recovery_completes_under_random_loss() {
    // 1% i.i.d. loss: the detector + NAK list must repair every hole.
    let out = run_quic(
        CcKind::Cubic,
        1_000_000,
        3,
        PacingStrategy::PerPacket,
        0.01,
        u64::MAX,
        EngineConfig::default(),
        false,
    );
    let fct = out.fct.expect("lossy flow must still complete");
    assert!(fct < Duration::from_secs(60), "fct {fct:?}");
    assert!(out.pkts_lost > 0, "1% loss on ~700 pkts must hit");
    assert!(out.pkts_retransmitted >= out.pkts_lost - out.ptos.min(out.pkts_lost));
    assert_eq!(
        out.counters.get("quic.pkts_lost").unwrap_or(0),
        out.pkts_lost
    );
}

#[test]
fn all_strategies_complete_and_counters_flow() {
    for strategy in PacingStrategy::matrix() {
        let out = run_quic(
            CcKind::CubicSuss,
            1_000_000,
            5,
            strategy,
            0.0,
            u64::MAX,
            EngineConfig::default(),
            false,
        );
        assert!(out.fct.is_some(), "{strategy:?}");
        assert_eq!(
            out.counters.get("quic.pkts_sent").unwrap_or(0),
            out.pkts_sent,
            "{strategy:?}"
        );
        assert!(
            out.counters.get("quic.acks_sent").unwrap_or(0) >= out.pkts_sent,
            "{strategy:?}: per-packet acking"
        );
    }
}

#[test]
fn suss_schedules_pacing_and_beats_cubic_on_clean_path() {
    // SUSS must fire its pacing plan through the QUIC interface and
    // finish a mid-size download no later than stock CUBIC.
    let suss = run_quic(
        CcKind::CubicSuss,
        4_000_000,
        11,
        PacingStrategy::PerPacket,
        0.0,
        u64::MAX,
        EngineConfig::default(),
        true,
    );
    let cubic = run_quic(
        CcKind::Cubic,
        4_000_000,
        11,
        PacingStrategy::PerPacket,
        0.0,
        u64::MAX,
        EngineConfig::default(),
        true,
    );
    assert!(suss.suss_pacings > 0, "SUSS pacing must engage over QUIC");
    assert_eq!(
        suss.counters.get("suss.pacing_rounds").unwrap_or(0),
        suss.suss_pacings as u64
    );
    let (f_s, f_c) = (suss.fct.unwrap(), cubic.fct.unwrap());
    assert!(
        f_s <= f_c,
        "SUSS {f_s:?} should not lose to CUBIC {f_c:?} on a clean path"
    );
}

#[test]
fn runs_are_deterministic_across_engines() {
    // Same seed ⇒ identical outcomes, and the timer-wheel engine must
    // agree with the binary-heap baseline byte for byte.
    let mk = |engine: EngineConfig| {
        run_quic(
            CcKind::CubicSuss,
            1_500_000,
            42,
            PacingStrategy::Burst(8),
            0.005,
            64 * 1024,
            engine,
            false,
        )
    };
    let a = mk(EngineConfig::default());
    let b = mk(EngineConfig::default());
    let c = mk(EngineConfig::baseline());
    for (x, name) in [(&b, "repeat"), (&c, "baseline engine")] {
        assert_eq!(a.fct, x.fct, "{name}");
        assert_eq!(a.pkts_sent, x.pkts_sent, "{name}");
        assert_eq!(a.pkts_retransmitted, x.pkts_retransmitted, "{name}");
        assert_eq!(a.pkts_lost, x.pkts_lost, "{name}");
        assert_eq!(a.ptos, x.ptos, "{name}");
    }
}

#[test]
fn chunked_pacing_defers_more_sends_than_per_packet() {
    // The strategies must actually behave differently on the wire: the
    // chunked sender sleeps on the interval grid (pace-delay timers),
    // while unlimited-phase per-packet sending arms far fewer.
    let chunked = run_quic(
        CcKind::Cubic,
        2_000_000,
        9,
        PacingStrategy::Chunked(Duration::from_millis(5)),
        0.0,
        u64::MAX,
        EngineConfig::default(),
        false,
    );
    let per_pkt = run_quic(
        CcKind::Cubic,
        2_000_000,
        9,
        PacingStrategy::PerPacket,
        0.0,
        u64::MAX,
        EngineConfig::default(),
        false,
    );
    assert!(chunked.counters.get("quic.pace_delays").unwrap_or(0) > 0);
    assert!(per_pkt.counters.get("quic.pace_delays").unwrap_or(0) > 0);
    assert!(chunked.fct.is_some() && per_pkt.fct.is_some());
}
