//! Figure 14: packet loss vs flow size (London server → Sweden 5G).

use experiments::loss::{fig14_scenario, sweep_matrix, LossParams};
use suss_bench::BinOpts;

fn main() {
    let o = BinOpts::from_args();
    let p = if o.quick {
        LossParams::quick()
    } else {
        LossParams::paper()
    };
    let m = sweep_matrix(&[fig14_scenario()], &p, &o.runner());
    let sweep = &m.sweeps[0];
    o.emit(
        &format!("Fig. 14 — retransmission rate, {}", sweep.scenario.id()),
        &sweep.to_table(),
    );
    o.write_manifest("fig14", &m.manifest);
}
