//! Figure 14: packet loss vs flow size (London server → Sweden 5G).

use experiments::loss::{fig14_scenario, sweep_matrix, LossParams};
use suss_bench::BenchCli;

fn main() {
    let o = BenchCli::parse("fig14");
    let p = if o.quick {
        LossParams::quick()
    } else {
        LossParams::paper()
    };
    let m = sweep_matrix(&[fig14_scenario()], &p, &o.runner());
    let sweep = &m.sweeps[0];
    o.emit(
        &format!("Fig. 14 — retransmission rate, {}", sweep.scenario.id()),
        &sweep.to_table(),
    );
    o.write_manifest(&m.manifest);
}
