//! Pluggable pacing strategies over the shared token-bucket pacer.
//!
//! "QUIC Steps" (PAPERS.md) shows that *how* a QUIC stack spaces its
//! departures — not just the rate — materially changes slow-start
//! behavior: implementations variously pace every packet, release short
//! bursts, or wake on a coarse timer and emit a whole chunk. This module
//! reifies those three shapes behind one interface so the `ext_quic_pacing`
//! campaign can hold everything else fixed and vary only the strategy:
//!
//! * [`PacingStrategy::PerPacket`] — a token bucket with a single-packet
//!   burst: departures are spread at the pacing rate, one by one.
//! * [`PacingStrategy::Burst`] — the same bucket with an N-packet burst
//!   allowance (GSO/quantum-style): short trains go out back to back,
//!   longer ones are spread.
//! * [`PacingStrategy::Chunked`] — interval-timer pacing: each interval
//!   opens a budget of `rate × interval` bytes that is spent as fast as
//!   the link accepts it, then the sender sleeps until the next boundary.
//!   Unused budget is discarded (that is what makes it bursty); overdraft
//!   carries forward so a budget smaller than one packet still makes
//!   progress without exceeding the long-run rate.
//!
//! Per-packet and burst-N are literally the transport-neutral
//! [`suss_core::Pacer`] generalized out of `tcp_sim::pacer` with different
//! burst allowances; chunked quantizes release times onto an interval
//! grid. A rate of `None` always means unlimited (pure ACK clocking).

use crate::frames::Nanos;
use std::time::Duration;
use suss_core::Pacer;

/// How departures are spaced once a pacing rate is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacingStrategy {
    /// Token bucket, one-packet burst: every packet individually spaced.
    PerPacket,
    /// Token bucket with an `n`-packet burst allowance.
    Burst(u32),
    /// Interval-timer pacing: release `rate × interval` bytes per tick.
    Chunked(Duration),
}

impl PacingStrategy {
    /// Stable label for cell names and tables (`per-packet`, `burst8`,
    /// `chunk5ms`).
    pub fn label(&self) -> String {
        match self {
            PacingStrategy::PerPacket => "per-packet".into(),
            PacingStrategy::Burst(n) => format!("burst{n}"),
            PacingStrategy::Chunked(d) => format!("chunk{}ms", d.as_millis()),
        }
    }

    /// The three shapes the QUIC-Steps comparison exercises, with the
    /// defaults used by the `ext_quic_pacing` campaign.
    pub fn matrix() -> [PacingStrategy; 3] {
        [
            PacingStrategy::PerPacket,
            PacingStrategy::Burst(8),
            PacingStrategy::Chunked(Duration::from_millis(5)),
        ]
    }
}

/// A strategy-shaped pacer: the sender's single gate for departures.
#[derive(Debug, Clone)]
pub struct QuicPacer {
    strategy: PacingStrategy,
    /// Full-size packet wire bytes: the burst quantum.
    mtu: u64,
    /// Token bucket backing `PerPacket`/`Burst` (unused for `Chunked`).
    bucket: Pacer,
    // Chunked state.
    rate: Option<f64>,
    interval_ns: u64,
    /// Bytes remaining in the open chunk (may overdraft below zero).
    credit: f64,
    /// When the next chunk opens.
    chunk_next: Nanos,
}

impl QuicPacer {
    /// A pacer for the given strategy and full-packet wire size. Starts
    /// unlimited (no rate).
    pub fn new(strategy: PacingStrategy, mtu: u64) -> Self {
        let burst = match strategy {
            PacingStrategy::PerPacket => mtu,
            PacingStrategy::Burst(n) => u64::from(n.max(1)) * mtu,
            PacingStrategy::Chunked(_) => mtu,
        };
        let interval_ns = match strategy {
            PacingStrategy::Chunked(d) => (d.as_nanos() as u64).max(1),
            _ => 0,
        };
        QuicPacer {
            strategy,
            mtu,
            bucket: Pacer::unlimited(burst),
            rate: None,
            interval_ns,
            credit: 0.0,
            chunk_next: 0,
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> PacingStrategy {
        self.strategy
    }

    /// Current rate in bytes per second, if limited.
    pub fn rate(&self) -> Option<f64> {
        match self.strategy {
            PacingStrategy::Chunked(_) => self.rate,
            _ => self.bucket.rate(),
        }
    }

    /// Set or change the pacing rate (`None` = unlimited).
    pub fn set_rate(&mut self, now: Nanos, rate: Option<f64>) {
        match self.strategy {
            PacingStrategy::Chunked(_) => {
                if self.rate.is_none() && rate.is_some() {
                    // First chunk opens immediately with one interval's
                    // budget; the grid anchors here.
                    self.credit = 0.0;
                    self.chunk_next = now;
                }
                self.rate = rate;
            }
            _ => self.bucket.set_rate(now, rate),
        }
    }

    fn chunk_reopen(&mut self, now: Nanos) {
        if now >= self.chunk_next {
            if let Some(rate) = self.rate {
                let budget = rate * self.interval_ns as f64 / 1e9;
                // Surplus is discarded (chunked pacing does not bank
                // idle credit); overdraft carries so the long-run rate
                // stays bounded even when budget < one packet.
                self.credit = budget + self.credit.min(0.0);
                self.chunk_next = now + self.interval_ns;
            }
        }
    }

    /// Whether `bytes` may depart at `now`.
    pub fn can_send(&mut self, now: Nanos, bytes: u64) -> bool {
        match self.strategy {
            PacingStrategy::Chunked(_) => {
                if self.rate.is_none() {
                    return true;
                }
                self.chunk_reopen(now);
                self.credit > 0.0 || bytes == 0
            }
            _ => self.bucket.can_send(now, bytes),
        }
    }

    /// Account for a departure of `bytes` at `now`.
    pub fn on_sent(&mut self, now: Nanos, bytes: u64) {
        match self.strategy {
            PacingStrategy::Chunked(_) => {
                if self.rate.is_some() {
                    self.chunk_reopen(now);
                    self.credit -= bytes as f64;
                }
            }
            _ => self.bucket.on_sent(now, bytes),
        }
    }

    /// The earliest time `bytes` could depart. Returns `now` when sending
    /// is already allowed.
    pub fn next_send_time(&mut self, now: Nanos, bytes: u64) -> Nanos {
        match self.strategy {
            PacingStrategy::Chunked(_) => {
                if self.can_send(now, bytes) {
                    now
                } else {
                    self.chunk_next.max(now + 1)
                }
            }
            _ => self.bucket.next_send_time(now, bytes),
        }
    }

    /// Full-size packet wire bytes (the burst quantum).
    pub fn mtu(&self) -> u64 {
        self.mtu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MTU: u64 = 1_500;

    fn drain(p: &mut QuicPacer, horizon: Nanos) -> u64 {
        let mut t: Nanos = 0;
        let mut sent = 0;
        while t < horizon {
            if p.can_send(t, MTU) {
                p.on_sent(t, MTU);
                sent += MTU;
            }
            t = p.next_send_time(t, MTU).max(t + 1);
        }
        sent
    }

    #[test]
    fn all_strategies_unlimited_by_default() {
        for s in PacingStrategy::matrix() {
            let mut p = QuicPacer::new(s, MTU);
            assert!(p.can_send(0, u64::MAX), "{s:?}");
            assert_eq!(p.next_send_time(5, MTU), 5, "{s:?}");
        }
    }

    #[test]
    fn per_packet_spreads_departures() {
        let mut p = QuicPacer::new(PacingStrategy::PerPacket, MTU);
        p.set_rate(0, Some(1_500_000.0)); // one MTU per ms
        assert!(p.can_send(0, MTU));
        p.on_sent(0, MTU);
        assert!(!p.can_send(0, MTU), "second packet must wait");
        assert_eq!(p.next_send_time(0, MTU), 1_000_000);
    }

    #[test]
    fn burst_allows_n_back_to_back() {
        let mut p = QuicPacer::new(PacingStrategy::Burst(4), MTU);
        p.set_rate(0, Some(1_500_000.0));
        for i in 0..4 {
            assert!(p.can_send(0, MTU), "packet {i} fits the burst");
            p.on_sent(0, MTU);
        }
        assert!(!p.can_send(0, MTU), "fifth packet must wait");
    }

    #[test]
    fn chunked_releases_budget_per_interval() {
        let mut p = QuicPacer::new(PacingStrategy::Chunked(Duration::from_millis(5)), MTU);
        p.set_rate(0, Some(1_500_000.0)); // 5 ms chunk = 7_500 B = 5 MTU
        let mut burst = 0;
        while p.can_send(0, MTU) {
            p.on_sent(0, MTU);
            burst += 1;
        }
        assert_eq!(burst, 5, "one interval's budget departs at once");
        assert_eq!(p.next_send_time(0, MTU), 5_000_000, "sleep to the grid");
        assert!(p.can_send(5_000_000, MTU));
    }

    #[test]
    fn chunked_discards_idle_surplus() {
        let mut p = QuicPacer::new(PacingStrategy::Chunked(Duration::from_millis(5)), MTU);
        p.set_rate(0, Some(1_500_000.0));
        // Idle across many intervals: the next chunk still holds one
        // interval's budget, not the banked sum.
        let mut burst = 0;
        while p.can_send(50_000_000, MTU) {
            p.on_sent(50_000_000, MTU);
            burst += 1;
        }
        assert_eq!(burst, 5);
    }

    #[test]
    fn all_strategies_converge_to_rate() {
        // 1.5 MB/s for 100 ms ≈ 150 kB, whatever the shape.
        for s in PacingStrategy::matrix() {
            let mut p = QuicPacer::new(s, MTU);
            p.set_rate(0, Some(1_500_000.0));
            let sent = drain(&mut p, 100_000_000);
            assert!(
                (135_000..=165_500).contains(&sent),
                "{s:?} sent {sent} in 100 ms"
            );
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PacingStrategy::PerPacket.label(), "per-packet");
        assert_eq!(PacingStrategy::Burst(8).label(), "burst8");
        assert_eq!(
            PacingStrategy::Chunked(Duration::from_millis(5)).label(),
            "chunk5ms"
        );
    }
}
