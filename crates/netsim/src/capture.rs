//! Packet capture: a pcap-like per-link event log.
//!
//! Attach a [`Capture`] to the simulation and every transmission,
//! delivery, and drop on the selected links is recorded with its
//! timestamp, flow, size, and byte offsets of interest. The query API
//! answers the questions that come up when a transport misbehaves
//! ("when did flow 3's packets start getting dropped?", "what was the
//! inter-departure spacing during the pacing window?").

use crate::packet::{FlowId, LinkId};
use crate::time::SimTime;
use simtrace::{kind, EventSink, TraceRecord};
use std::time::Duration;

/// What happened to a packet at a capture point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureKind {
    /// Finished serializing onto the wire.
    Transmitted,
    /// Delivered to the far end.
    Delivered,
    /// Dropped by the egress queue (overflow or AQM).
    QueueDropped,
    /// Dropped by the random-loss process.
    RandomLost,
}

/// One captured event.
#[derive(Debug, Clone, Copy)]
pub struct CaptureEvent {
    /// When it happened.
    pub t: SimTime,
    /// Which half-link.
    pub link: LinkId,
    /// What happened.
    pub kind: CaptureKind,
    /// Flow of the packet.
    pub flow: FlowId,
    /// On-wire size.
    pub size: u32,
    /// Engine-assigned packet id.
    pub packet_id: u64,
}

/// An in-memory capture buffer with query helpers.
#[derive(Debug, Default)]
pub struct Capture {
    events: Vec<CaptureEvent>,
    /// Links to record (empty = all).
    links: Vec<LinkId>,
    /// Hard cap on stored events (oldest kept; capture stops at the cap,
    /// which is reported by [`Capture::truncated`]).
    limit: usize,
    truncated: bool,
}

impl Capture {
    /// Capture everything on the given links (empty slice = all links),
    /// up to `limit` events.
    pub fn new(links: &[LinkId], limit: usize) -> Self {
        Capture {
            events: Vec::new(),
            links: links.to_vec(),
            limit: limit.max(1),
            truncated: false,
        }
    }

    /// Whether this capture records the given link.
    pub fn wants(&self, link: LinkId) -> bool {
        self.links.is_empty() || self.links.contains(&link)
    }

    /// Record one event (engine-facing).
    pub fn record(&mut self, ev: CaptureEvent) {
        if self.events.len() >= self.limit {
            self.truncated = true;
            return;
        }
        if self.wants(ev.link) {
            self.events.push(ev);
        }
    }

    /// All events, in time order.
    pub fn events(&self) -> &[CaptureEvent] {
        &self.events
    }

    /// Whether the buffer hit its limit (later events missing).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Events of one kind for one flow.
    pub fn of(&self, flow: FlowId, kind: CaptureKind) -> impl Iterator<Item = &CaptureEvent> {
        self.events
            .iter()
            .filter(move |e| e.flow == flow && e.kind == kind)
    }

    /// Count of events of a kind for a flow.
    pub fn count(&self, flow: FlowId, kind: CaptureKind) -> usize {
        self.of(flow, kind).count()
    }

    /// First drop (queue or random) for a flow, if any.
    pub fn first_drop(&self, flow: FlowId) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| {
                e.flow == flow
                    && matches!(e.kind, CaptureKind::QueueDropped | CaptureKind::RandomLost)
            })
            .map(|e| e.t)
    }

    /// Inter-departure gaps of a flow's transmissions within `[from, to]` —
    /// the direct measurement of burstiness (paper §6.3's packet-density
    /// argument).
    pub fn departure_gaps(&self, flow: FlowId, from: SimTime, to: SimTime) -> Vec<Duration> {
        let times: Vec<SimTime> = self
            .of(flow, CaptureKind::Transmitted)
            .filter(|e| e.t >= from && e.t <= to)
            .map(|e| e.t)
            .collect();
        times
            .windows(2)
            .map(|w| w[1].saturating_since(w[0]))
            .collect()
    }

    /// Export every captured event to a structured [`EventSink`] using the
    /// common trace-record schema (`pkt_tx` / `pkt_rx` / `pkt_drop` /
    /// `pkt_lost`).
    pub fn export(&self, sink: &mut dyn EventSink) {
        for e in &self.events {
            let k = match e.kind {
                CaptureKind::Transmitted => kind::PKT_TX,
                CaptureKind::Delivered => kind::PKT_RX,
                CaptureKind::QueueDropped => kind::PKT_DROP,
                CaptureKind::RandomLost => kind::PKT_LOST,
            };
            let mut rec = TraceRecord::event(e.t.as_nanos(), e.flow.0, k);
            rec.link = Some(e.link.index() as u64);
            rec.size = Some(u64::from(e.size));
            rec.packet_id = Some(e.packet_id);
            sink.record(&rec);
        }
    }

    /// Render a compact text log (for debugging sessions).
    pub fn dump(&self, max_lines: usize) -> String {
        let mut out = String::new();
        for e in self.events.iter().take(max_lines) {
            out.push_str(&format!(
                "{:>12} {} {:?} {} {}B pkt#{}\n",
                e.t.to_string(),
                e.link,
                e.kind,
                e.flow,
                e.size,
                e.packet_id
            ));
        }
        if self.events.len() > max_lines {
            out.push_str(&format!("… {} more\n", self.events.len() - max_lines));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ms: u64, link: u32, kind: CaptureKind, flow: u64) -> CaptureEvent {
        CaptureEvent {
            t: SimTime::from_millis(t_ms),
            link: LinkId(link),
            kind,
            flow: FlowId(flow),
            size: 1500,
            packet_id: t_ms,
        }
    }

    #[test]
    fn records_and_filters_by_link() {
        let mut c = Capture::new(&[LinkId(1)], 100);
        c.record(ev(1, 1, CaptureKind::Transmitted, 7));
        c.record(ev(2, 2, CaptureKind::Transmitted, 7)); // filtered out
        assert_eq!(c.events().len(), 1);
        assert!(c.wants(LinkId(1)) && !c.wants(LinkId(2)));
    }

    #[test]
    fn empty_link_list_captures_all() {
        let mut c = Capture::new(&[], 100);
        c.record(ev(1, 1, CaptureKind::Delivered, 7));
        c.record(ev(2, 9, CaptureKind::Delivered, 7));
        assert_eq!(c.events().len(), 2);
    }

    #[test]
    fn limit_truncates() {
        let mut c = Capture::new(&[], 2);
        for k in 0..5 {
            c.record(ev(k, 1, CaptureKind::Transmitted, 1));
        }
        assert_eq!(c.events().len(), 2);
        assert!(c.truncated());
    }

    #[test]
    fn queries() {
        let mut c = Capture::new(&[], 100);
        c.record(ev(1, 1, CaptureKind::Transmitted, 7));
        c.record(ev(2, 1, CaptureKind::Transmitted, 7));
        c.record(ev(5, 1, CaptureKind::QueueDropped, 7));
        c.record(ev(6, 1, CaptureKind::Transmitted, 8));
        assert_eq!(c.count(FlowId(7), CaptureKind::Transmitted), 2);
        assert_eq!(c.first_drop(FlowId(7)), Some(SimTime::from_millis(5)));
        assert_eq!(c.first_drop(FlowId(8)), None);
        let gaps = c.departure_gaps(FlowId(7), SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(gaps, vec![Duration::from_millis(1)]);
    }

    #[test]
    fn export_maps_kinds_to_records() {
        let mut c = Capture::new(&[], 100);
        c.record(ev(1, 2, CaptureKind::Transmitted, 7));
        c.record(ev(2, 2, CaptureKind::QueueDropped, 7));
        let mut sink = simtrace::VecSink::new();
        c.export(&mut sink);
        assert_eq!(sink.records.len(), 2);
        assert_eq!(sink.records[0].kind, kind::PKT_TX);
        assert_eq!(sink.records[0].flow, Some(7));
        assert_eq!(sink.records[0].link, Some(2));
        assert_eq!(sink.records[1].kind, kind::PKT_DROP);
        assert_eq!(sink.records[1].t_ns, SimTime::from_millis(2).as_nanos());
    }

    #[test]
    fn dump_is_bounded() {
        let mut c = Capture::new(&[], 100);
        for k in 0..10 {
            c.record(ev(k, 1, CaptureKind::Transmitted, 1));
        }
        let d = c.dump(3);
        assert_eq!(d.lines().count(), 4); // 3 events + "… more"
        assert!(d.contains("… 7 more"));
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::link::LinkSpec;
    use crate::packet::Packet;
    use crate::sim::{Agent, Ctx, Sim};
    use std::any::Any;

    struct Null;
    impl Agent for Null {
        fn on_packet(&mut self, _p: Packet, _c: &mut Ctx<'_>) {}
        fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn engine_records_tx_and_drops() {
        let mut sim = Sim::new(1);
        let a = sim.add_agent(Box::new(Null));
        let b = sim.add_agent(Box::new(Null));
        // Slow link with room for exactly one queued packet.
        let spec = LinkSpec::clean(Bandwidth::from_kbps(80), std::time::Duration::ZERO)
            .with_queue_bytes(1_000);
        let ab = sim.add_half_link(a, b, spec);
        sim.enable_capture(&[ab], 1_000);
        sim.with_agent_ctx::<Null, _>(a, |_, ctx| {
            for _ in 0..4 {
                ctx.send(ab, Packet::opaque(FlowId(3), a, b, 1_000));
            }
        });
        sim.run_to_completion();
        let cap = sim.capture().unwrap();
        // 1 transmitting + 1 queued survive; 2 dropped.
        assert_eq!(cap.count(FlowId(3), CaptureKind::Transmitted), 2);
        assert_eq!(cap.count(FlowId(3), CaptureKind::QueueDropped), 2);
        assert!(cap.first_drop(FlowId(3)).is_some());
        // 1000 B at 80 kbps = 100 ms per packet.
        let gaps = cap.departure_gaps(FlowId(3), SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(gaps, vec![std::time::Duration::from_millis(100)]);
    }

    #[test]
    fn engine_records_random_loss() {
        let mut sim = Sim::new(2);
        let a = sim.add_agent(Box::new(Null));
        let b = sim.add_agent(Box::new(Null));
        let spec =
            LinkSpec::clean(Bandwidth::from_mbps(100), std::time::Duration::ZERO).with_loss(0.5);
        let ab = sim.add_half_link(a, b, spec);
        sim.enable_capture(&[], 10_000);
        sim.with_agent_ctx::<Null, _>(a, |_, ctx| {
            for _ in 0..200 {
                ctx.send(ab, Packet::opaque(FlowId(1), a, b, 100));
            }
        });
        sim.run_to_completion();
        let cap = sim.capture().unwrap();
        let lost = cap.count(FlowId(1), CaptureKind::RandomLost);
        assert!(lost > 50 && lost < 150, "lost {lost}");
        assert_eq!(
            lost + cap.count(FlowId(1), CaptureKind::Transmitted),
            200,
            "every packet is either transmitted or lost"
        );
    }
}

#[cfg(test)]
mod delivery_tests {
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::link::LinkSpec;
    use crate::packet::Packet;
    use crate::sim::{Agent, Ctx, Sim};
    use std::any::Any;

    struct Null;
    impl Agent for Null {
        fn on_packet(&mut self, _p: Packet, _c: &mut Ctx<'_>) {}
        fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn deliveries_are_recorded_with_latency() {
        let mut sim = Sim::new(1);
        let a = sim.add_agent(Box::new(Null));
        let b = sim.add_agent(Box::new(Null));
        let spec = LinkSpec::clean(
            Bandwidth::from_mbps(1),
            std::time::Duration::from_millis(10),
        );
        let ab = sim.add_half_link(a, b, spec);
        sim.enable_capture(&[], 100);
        sim.with_agent_ctx::<Null, _>(a, |_, ctx| {
            ctx.send(ab, Packet::opaque(FlowId(5), a, b, 125));
        });
        sim.run_to_completion();
        let cap = sim.capture().unwrap();
        assert_eq!(cap.count(FlowId(5), CaptureKind::Transmitted), 1);
        assert_eq!(cap.count(FlowId(5), CaptureKind::Delivered), 1);
        let tx = cap
            .of(FlowId(5), CaptureKind::Transmitted)
            .next()
            .unwrap()
            .t;
        let rx = cap.of(FlowId(5), CaptureKind::Delivered).next().unwrap().t;
        assert_eq!(
            rx.saturating_since(tx),
            std::time::Duration::from_millis(10)
        );
    }
}
