//! Summary statistics over repeated-run batches.
//!
//! The paper repeats every measurement 50 times and reports mean with a
//! standard-deviation band; these helpers compute the same aggregates.

/// Mean, spread, and extrema of a sample batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Summarize a batch. Returns `None` for an empty batch.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Summarize `(index, value)` pairs that may arrive out of order —
    /// the shape a parallel campaign produces. Pairs are sorted by index
    /// before aggregation, so the result (including every floating-point
    /// rounding step of the mean/variance sums) is identical to
    /// collecting the samples serially in index order, regardless of the
    /// order the pairs were pushed in.
    pub fn of_indexed(mut pairs: Vec<(usize, f64)>) -> Option<Summary> {
        pairs.sort_by_key(|&(i, _)| i);
        let xs: Vec<f64> = pairs.into_iter().map(|(_, v)| v).collect();
        Summary::of(&xs)
    }

    /// Half-width of the ~95% confidence interval for the mean
    /// (normal approximation, 1.96·σ/√n).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// Percentile of a sample batch (nearest-rank). `p` in `[0, 100]`.
///
/// Returns `None` for an empty batch.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    Some(sorted[rank.min(sorted.len() - 1)])
}

/// Relative improvement of `new` over `baseline`: `(base − new) / base`.
///
/// Positive means `new` is better (smaller). This is the paper's
/// "FCT improvement" metric (Figs. 12/18, Table 1).
pub fn improvement(baseline: f64, new: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - new) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        assert!(Summary::of(&[]).is_none());
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn of_indexed_is_order_insensitive() {
        // Values whose sum depends on accumulation order in the last ulp.
        let vals = [1e16, 3.0, -1e16, 7.0, 0.1, 1e-9];
        let forward: Vec<(usize, f64)> = vals.iter().copied().enumerate().collect();
        let mut scrambled = forward.clone();
        scrambled.rotate_left(3);
        scrambled.swap(0, 2);
        let a = Summary::of_indexed(forward).unwrap();
        let b = Summary::of_indexed(scrambled).unwrap();
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
        assert_eq!(a, Summary::of(&vals).unwrap());
        assert!(Summary::of_indexed(Vec::new()).is_none());
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let many: Vec<f64> = (0..300).map(|i| (i % 3) as f64 + 1.0).collect();
        let many = Summary::of(&many).unwrap();
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn improvement_metric() {
        assert!((improvement(2.0, 1.5) - 0.25).abs() < 1e-12);
        assert!((improvement(1.0, 1.2) + 0.2).abs() < 1e-12);
        assert_eq!(improvement(0.0, 1.0), 0.0);
    }
}
