//! Run manifests: the machine-readable record of one campaign execution.
//!
//! A manifest is written next to the figure's `results/*.txt` artifact
//! (e.g. `results/fig11.manifest.json`) and answers "how was this result
//! produced, how long did it take, and how much came from cache" without
//! re-running anything.

use serde::Serialize;
use simtrace::{ProfSnapshot, ScopeAnnotation};
use std::io;
use std::path::Path;

/// How a cell's execution ended.
///
/// The cell lifecycle is: dispatched → (panic → bounded retries) →
/// `Ok`/`Retried` on success, `Panicked` when the retry budget is spent,
/// `TimedOut` when the wall-clock or progress watchdog abandoned it.
/// Only successful cells are stored to cache, so re-running a campaign
/// against a warm cache recomputes exactly the failed cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CellStatus {
    /// Completed on the first attempt (or served from cache).
    Ok,
    /// Completed, but only after at least one retried panic.
    Retried,
    /// Panicked on every attempt; no result.
    Panicked,
    /// Abandoned by the per-cell watchdog (wall-clock budget exceeded, or
    /// no simulator progress for the stall window); no result.
    TimedOut,
}

impl CellStatus {
    /// Whether this status carries a result.
    pub fn succeeded(self) -> bool {
        matches!(self, CellStatus::Ok | CellStatus::Retried)
    }
}

/// Per-cell execution record.
#[derive(Debug, Clone, Serialize)]
pub struct CellRecord {
    /// Position in campaign order.
    pub index: usize,
    /// Human-readable cell label.
    pub label: String,
    /// The cell's seed.
    pub seed: u64,
    /// Content-address (cache key) as 16 hex digits.
    pub key: String,
    /// Whether the result came from cache.
    pub cached: bool,
    /// Wall time to compute the cell, in milliseconds (0 for hits).
    pub wall_ms: f64,
    /// Simulator events dispatched while computing the cell (0 for hits,
    /// and for cells that never report via `simtrace::runtime`).
    pub events: u64,
    /// How the cell's execution ended.
    pub status: CellStatus,
    /// Execution attempts (0 for cache hits, 1 for a clean first run,
    /// more when panics were retried).
    pub attempts: u32,
    /// The terminal failure message (panic payload or watchdog verdict);
    /// empty for successful cells.
    pub error: String,
    /// Path of the flight-recorder dump written when this cell terminally
    /// panicked or timed out; empty when no dump exists.
    pub flightrec: String,
}

/// A named FCT-percentile summary attached to a manifest — one per
/// (scenario, cc, load, flow-size bucket) group in fleet campaigns, so
/// the percentile curves are machine-readable without reparsing the
/// rendered table. Percentiles are in seconds.
#[derive(Debug, Clone, Serialize)]
pub struct FctAnnotation {
    /// Group label, e.g. `fleet/4G/cubic+suss/load0.6/<=2MB`.
    pub label: String,
    /// Flows aggregated into this group.
    pub n: u64,
    /// Median flow-completion time, seconds.
    pub p50: f64,
    /// 90th-percentile FCT, seconds.
    pub p90: f64,
    /// 99th-percentile FCT, seconds.
    pub p99: f64,
    /// 99.9th-percentile FCT, seconds.
    pub p999: f64,
}

/// The record of one [`Campaign::run`](crate::Campaign::run).
#[derive(Debug, Clone, Serialize)]
pub struct RunManifest {
    /// Experiment id.
    pub experiment: String,
    /// Version tag in effect.
    pub version: String,
    /// Worker threads used.
    pub workers: usize,
    /// Total cells in the campaign.
    pub total_cells: usize,
    /// Cells served from cache.
    pub cache_hits: usize,
    /// Cells recomputed.
    pub cache_misses: usize,
    /// Wall time of the whole run, seconds.
    pub wall_secs: f64,
    /// Throughput over the whole run (total cells / wall time).
    pub cells_per_sec: f64,
    /// Simulator events dispatched across all computed cells.
    pub events_total: u64,
    /// Simulator event throughput over the whole run (events / wall time).
    pub events_per_sec: f64,
    /// Summed per-cell compute time — how long workers were busy.
    pub worker_busy_secs: f64,
    /// Worker utilization in `[0, 1]`: busy time / (wall time × workers).
    pub utilization: f64,
    /// Median per-cell compute wall time over computed (non-cached,
    /// successful) cells, ms. The busy/utilization totals hide stragglers;
    /// the tail lives here.
    pub wall_ms_p50: f64,
    /// 99th-percentile per-cell compute wall time (nearest-rank), ms.
    pub wall_ms_p99: f64,
    /// Cells that ended without a result (`runner.cells_failed`).
    pub cells_failed: usize,
    /// Cell re-executions after a panic (`runner.cell_retries`).
    pub cell_retries: u64,
    /// Cells abandoned by the watchdog (`runner.cell_timeouts`).
    pub cell_timeouts: u64,
    /// Corrupt cache entries quarantined while loading
    /// (`runner.cache_quarantined`).
    pub cache_quarantined: u64,
    /// Experiment-attached result summaries (empty unless the experiment
    /// pushes them, e.g. fleet FCT percentiles per flow-size bucket).
    pub annotations: Vec<FctAnnotation>,
    /// Queue/link time-series summaries reported by cells through
    /// `simtrace::runtime::add_scope_annotation` (empty unless scope
    /// sampling was enabled).
    pub scope_annotations: Vec<ScopeAnnotation>,
    /// Merged span profile across all computed cells (empty unless the
    /// run profiled; see [`RunnerOpts::profile`](crate::RunnerOpts)).
    pub prof: ProfSnapshot,
    /// Per-cell records, in campaign order.
    pub cells: Vec<CellRecord>,
}

impl RunManifest {
    /// Render as a JSON string (single line, trailing newline).
    pub fn to_json_string(&self) -> String {
        let mut s = serde::to_string(self);
        s.push('\n');
        s
    }

    /// Write the manifest to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json_string())
    }

    /// Whether every cell produced a result.
    pub fn all_ok(&self) -> bool {
        self.cells_failed == 0
    }

    /// Fraction of cells served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.total_cells == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.total_cells as f64
        }
    }

    /// Human-readable end-of-campaign summary: one header line plus the
    /// slowest computed cells, ready to print on stderr.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}: {} cells in {:.2}s | {} hit / {} miss | {} events ({}/s) | \
             {} workers busy {:.2}s ({:.0}% util)\n",
            self.experiment,
            self.total_cells,
            self.wall_secs,
            self.cache_hits,
            self.cache_misses,
            human_count(self.events_total),
            human_count(self.events_per_sec as u64),
            self.workers,
            self.worker_busy_secs,
            self.utilization * 100.0,
        );
        if self.cells_failed > 0 || self.cell_retries > 0 || self.cache_quarantined > 0 {
            s.push_str(&format!(
                "  resilience: {} failed ({} timed out) | {} retries | \
                 {} cache entries quarantined\n",
                self.cells_failed, self.cell_timeouts, self.cell_retries, self.cache_quarantined,
            ));
            for c in self.cells.iter().filter(|c| !c.status.succeeded()) {
                s.push_str(&format!("  {:?} {}: {}\n", c.status, c.label, c.error));
            }
        }
        if !self.prof.is_empty() {
            s.push_str(&format!(
                "  profile: {:.1}% of {:.1} ms attributed over {} span paths\n",
                self.prof.coverage_percent(),
                self.prof.total_ns() as f64 / 1e6,
                self.prof.spans.len(),
            ));
        }
        let mut computed: Vec<&CellRecord> = self.cells.iter().filter(|c| !c.cached).collect();
        computed.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        for c in computed.iter().take(3) {
            s.push_str(&format!(
                "  {:>9.1} ms  {:>10} ev  {}\n",
                c.wall_ms,
                human_count(c.events),
                c.label
            ));
        }
        s
    }
}

/// Format a count with k/M/G suffixes for summary lines.
fn human_count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            experiment: "exp".into(),
            version: "v1".into(),
            workers: 4,
            total_cells: 10,
            cache_hits: 9,
            cache_misses: 1,
            wall_secs: 2.0,
            cells_per_sec: 5.0,
            events_total: 1_500_000,
            events_per_sec: 750_000.0,
            worker_busy_secs: 1.5,
            utilization: 0.1875,
            wall_ms_p50: 1500.0,
            wall_ms_p99: 1500.0,
            cells_failed: 0,
            cell_retries: 0,
            cell_timeouts: 0,
            cache_quarantined: 0,
            annotations: vec![FctAnnotation {
                label: "fleet/demo/<=2MB".into(),
                n: 1800,
                p50: 0.21,
                p90: 0.74,
                p99: 2.5,
                p999: 6.1,
            }],
            scope_annotations: vec![ScopeAnnotation {
                label: "scope/demo/queue_depth".into(),
                n: 420,
                p50: 0.001,
                p90: 0.004,
                p99: 0.009,
                p999: 0.012,
            }],
            prof: ProfSnapshot {
                spans: vec![simtrace::ProfSpan {
                    path: "cell;sim/step".into(),
                    self_ns: 1_000_000,
                    calls: 10,
                }],
            },
            cells: vec![
                CellRecord {
                    index: 0,
                    label: "c0".into(),
                    seed: 1,
                    key: "00112233aabbccdd".into(),
                    cached: true,
                    wall_ms: 0.0,
                    events: 0,
                    status: CellStatus::Ok,
                    attempts: 0,
                    error: String::new(),
                    flightrec: String::new(),
                },
                CellRecord {
                    index: 1,
                    label: "c1".into(),
                    seed: 2,
                    key: "00112233aabbccde".into(),
                    cached: false,
                    wall_ms: 1500.0,
                    events: 1_500_000,
                    status: CellStatus::Ok,
                    attempts: 1,
                    error: String::new(),
                    flightrec: String::new(),
                },
            ],
        }
    }

    #[test]
    fn renders_and_reports_hit_rate() {
        let m = sample();
        assert!((m.hit_rate() - 0.9).abs() < 1e-12);
        let json = m.to_json_string();
        assert!(json.contains("\"experiment\":\"exp\""));
        assert!(json.contains("\"cache_hits\":9"));
        assert!(json.contains("\"events_total\":1500000"));
        assert!(json.contains("\"worker_busy_secs\":1.5"));
        assert!(json.contains("\"wall_ms_p50\":"));
        assert!(json.contains("\"wall_ms_p99\":"));
        assert!(json.contains("scope/demo/queue_depth"));
        assert!(json.contains("cell;sim/step"));
        assert!(json.ends_with('\n'));
        // Must parse back as JSON.
        assert!(serde::Json::parse(json.trim()).is_some());
    }

    #[test]
    fn summary_lists_slowest_computed_cells() {
        let s = sample().summary();
        assert!(s.contains("exp: 10 cells"));
        assert!(s.contains("1.5M events"));
        assert!(s.contains("c1"), "computed cell should be listed: {s}");
        assert!(!s.contains(" c0"), "cached cell must not be listed: {s}");
        assert!(
            !s.contains("resilience:"),
            "clean run must not print a failure block: {s}"
        );
    }

    #[test]
    fn failures_render_in_json_and_summary() {
        let mut m = sample();
        m.cells_failed = 1;
        m.cell_timeouts = 1;
        m.cell_retries = 2;
        m.cells[1].status = CellStatus::TimedOut;
        m.cells[1].error = "no simulator progress for 5s".into();
        assert!(!m.all_ok());
        let json = m.to_json_string();
        assert!(json.contains("\"cells_failed\":1"));
        assert!(json.contains("\"status\":\"TimedOut\""));
        assert!(json.contains("no simulator progress"));
        let s = m.summary();
        assert!(s.contains("resilience: 1 failed (1 timed out) | 2 retries"));
        assert!(s.contains("TimedOut c1: no simulator progress"), "{s}");
    }

    #[test]
    fn writes_to_disk() {
        let dir =
            std::env::temp_dir().join(format!("simrunner-manifest-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("m.json");
        sample().write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"total_cells\":10"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
