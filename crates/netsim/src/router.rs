//! A store-and-forward router with static destination-based routing.

use crate::packet::{LinkId, NodeId, Packet};
use crate::sim::{Agent, Ctx};
use std::any::Any;
use std::collections::HashMap;

/// A router that forwards packets toward their destination node over
/// statically configured egress half-links.
///
/// Queueing and serialization happen on the half-links themselves, so this
/// agent only performs the routing decision — matching the paper's testbed,
/// where the Linux routers are plain forwarders and the bottleneck behaviour
/// comes from the shaped egress interface.
pub struct Router {
    routes: HashMap<NodeId, LinkId>,
    default_route: Option<LinkId>,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped for lack of a route (a topology bug if nonzero).
    pub unroutable: u64,
}

impl Router {
    /// Create a router with no routes.
    pub fn new() -> Self {
        Router {
            routes: HashMap::new(),
            default_route: None,
            forwarded: 0,
            unroutable: 0,
        }
    }

    /// Route packets destined to `dst` out of `link`.
    pub fn add_route(&mut self, dst: NodeId, link: LinkId) {
        self.routes.insert(dst, link);
    }

    /// Fallback egress for destinations without an explicit route.
    pub fn set_default_route(&mut self, link: LinkId) {
        self.default_route = Some(link);
    }

    /// The egress link that would carry a packet to `dst`, if any.
    pub fn route_for(&self, dst: NodeId) -> Option<LinkId> {
        self.routes.get(&dst).copied().or(self.default_route)
    }
}

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

impl Agent for Router {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        match self.route_for(pkt.dst) {
            Some(link) => {
                self.forwarded += 1;
                ctx.send(link, pkt);
            }
            None => {
                self.unroutable += 1;
            }
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::link::LinkSpec;
    use crate::packet::FlowId;
    use crate::sim::Sim;
    use crate::time::SimTime;
    use std::time::Duration;

    struct Sink {
        got: Vec<u64>,
    }
    impl Agent for Sink {
        fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx<'_>) {
            self.got.push(pkt.id);
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn routes_by_destination() {
        let mut sim = Sim::new(1);
        let src = sim.add_agent(Box::new(Sink { got: vec![] }));
        let r = sim.add_agent(Box::new(Router::new()));
        let d1 = sim.add_agent(Box::new(Sink { got: vec![] }));
        let d2 = sim.add_agent(Box::new(Sink { got: vec![] }));
        let spec = || LinkSpec::clean(Bandwidth::from_mbps(100), Duration::from_millis(1));
        let src_r = sim.add_half_link(src, r, spec());
        let r_d1 = sim.add_half_link(r, d1, spec());
        let r_d2 = sim.add_half_link(r, d2, spec());
        {
            let router = sim.agent_mut::<Router>(r);
            router.add_route(d1, r_d1);
            router.add_route(d2, r_d2);
        }
        sim.with_agent_ctx::<Sink, _>(src, |_, ctx| {
            ctx.send(src_r, Packet::opaque(FlowId(1), src, d1, 100));
            ctx.send(src_r, Packet::opaque(FlowId(2), src, d2, 100));
            ctx.send(src_r, Packet::opaque(FlowId(3), src, d2, 100));
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Sink>(d1).got.len(), 1);
        assert_eq!(sim.agent::<Sink>(d2).got.len(), 2);
        assert_eq!(sim.agent::<Router>(r).forwarded, 3);
        assert_eq!(sim.agent::<Router>(r).unroutable, 0);
    }

    #[test]
    fn unroutable_counted() {
        let mut sim = Sim::new(1);
        let src = sim.add_agent(Box::new(Sink { got: vec![] }));
        let r = sim.add_agent(Box::new(Router::new()));
        let ghost = sim.add_agent(Box::new(Sink { got: vec![] }));
        let spec = LinkSpec::clean(Bandwidth::from_mbps(100), Duration::ZERO);
        let src_r = sim.add_half_link(src, r, spec);
        sim.with_agent_ctx::<Sink, _>(src, |_, ctx| {
            ctx.send(src_r, Packet::opaque(FlowId(1), src, ghost, 100));
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Router>(r).unroutable, 1);
    }

    #[test]
    fn default_route_catches_unknown() {
        let mut sim = Sim::new(1);
        let src = sim.add_agent(Box::new(Sink { got: vec![] }));
        let r = sim.add_agent(Box::new(Router::new()));
        let d = sim.add_agent(Box::new(Sink { got: vec![] }));
        let spec = || LinkSpec::clean(Bandwidth::from_mbps(100), Duration::ZERO);
        let src_r = sim.add_half_link(src, r, spec());
        let r_d = sim.add_half_link(r, d, spec());
        sim.agent_mut::<Router>(r).set_default_route(r_d);
        sim.with_agent_ctx::<Sink, _>(src, |_, ctx| {
            ctx.send(src_r, Packet::opaque(FlowId(1), src, d, 100));
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Sink>(d).got.len(), 1);
    }
}
