//! Convenience wiring: install a QUIC sender/receiver pair into a
//! simulation (the message-oriented twin of `tcp_sim::flow`).

use crate::receiver::QuicReceiver;
use crate::sender::{QuicConfig, QuicSender};
use cc_algos::QuicController;
use netsim::{FlowId, LinkId, NodeId, Sim};

/// Handles to an installed QUIC flow's endpoints.
#[derive(Debug, Clone, Copy)]
pub struct QuicFlowEnds {
    /// The flow id.
    pub flow: FlowId,
    /// Node id of the sending endpoint (`QuicSender`).
    pub sender: NodeId,
    /// Node id of the receiving endpoint (`QuicReceiver`).
    pub receiver: NodeId,
}

/// Register a QUIC sender/receiver pair for one flow and cross-wire their
/// peer ids. Egress links must still be wired after topology construction
/// with [`wire_quic_flow`].
pub fn install_quic_flow(
    sim: &mut Sim,
    flow: FlowId,
    cfg: QuicConfig,
    cc: Box<dyn QuicController>,
) -> QuicFlowEnds {
    let sender = sim.add_agent(Box::new(QuicSender::new(cfg, flow, cc)));
    let receiver = sim.add_agent(Box::new(QuicReceiver::new(flow)));
    let registry = sim.metrics().clone();
    sim.agent_mut::<QuicSender>(sender).bind_metrics(&registry);
    sim.agent_mut::<QuicReceiver>(receiver)
        .bind_metrics(&registry);
    sim.agent_mut::<QuicSender>(sender).set_peer(receiver);
    sim.agent_mut::<QuicReceiver>(receiver).set_peer(sender);
    QuicFlowEnds {
        flow,
        sender,
        receiver,
    }
}

/// Wire each endpoint's egress half-link (sender→network, receiver→network).
pub fn wire_quic_flow(
    sim: &mut Sim,
    ends: QuicFlowEnds,
    sender_egress: LinkId,
    receiver_egress: LinkId,
) {
    sim.agent_mut::<QuicSender>(ends.sender)
        .set_egress(sender_egress);
    sim.agent_mut::<QuicReceiver>(ends.receiver)
        .set_egress(receiver_egress);
}

/// Whether the flow has completed (receiver holds the full stream).
pub fn quic_flow_complete(sim: &Sim, ends: QuicFlowEnds) -> bool {
    sim.agent::<QuicReceiver>(ends.receiver)
        .completed_at()
        .is_some()
}

/// Tear a QUIC flow down: retire both endpoint agents and return the
/// receiver's completion instant (`None` if the flow never finished).
pub fn teardown_quic_flow(sim: &mut Sim, ends: QuicFlowEnds) -> Option<netsim::SimTime> {
    let completed_at = sim.agent::<QuicReceiver>(ends.receiver).completed_at();
    drop(sim.retire_agent(ends.sender));
    drop(sim.retire_agent(ends.receiver));
    completed_at
}
