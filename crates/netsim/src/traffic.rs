//! Background (cross-) traffic sources.
//!
//! The paper's Internet-scale paths carry uncontrolled cross traffic; the
//! local testbed controls it with competing TCP flows. This module adds a
//! third option: open-loop packet sources (constant bit-rate or Poisson)
//! that occupy a configurable share of a bottleneck without reacting to
//! congestion — useful for studying SUSS against *unresponsive* load.

use crate::bandwidth::Bandwidth;
use crate::packet::{FlowId, LinkId, NodeId, Packet};
use crate::rng::SimRng;
use crate::sim::{Agent, Ctx};
use crate::time::SimTime;
use std::any::Any;
use std::time::Duration;

/// Packet arrival process.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Constant bit rate: evenly spaced packets.
    Cbr,
    /// Poisson arrivals (exponential inter-packet gaps) at the same mean
    /// rate — burstier, a better stand-in for aggregated Internet load.
    Poisson,
}

/// An open-loop traffic source: emits `packet_bytes`-sized packets toward
/// `sink` at `rate`, between `start` and `stop`.
pub struct TrafficSource {
    flow: FlowId,
    sink: NodeId,
    out: Option<LinkId>,
    rate: Bandwidth,
    packet_bytes: u32,
    process: ArrivalProcess,
    start: SimTime,
    stop: SimTime,
    rng: SimRng,
    /// Packets emitted.
    pub sent: u64,
}

impl TrafficSource {
    /// Create a source; wire its egress with [`set_egress`](Self::set_egress).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flow: FlowId,
        sink: NodeId,
        rate: Bandwidth,
        packet_bytes: u32,
        process: ArrivalProcess,
        start: SimTime,
        stop: SimTime,
        rng: SimRng,
    ) -> Self {
        assert!(rate.as_bps() > 0, "traffic source needs a positive rate");
        TrafficSource {
            flow,
            sink,
            out: None,
            rate,
            packet_bytes,
            process,
            start,
            stop,
            rng,
            sent: 0,
        }
    }

    /// Wire the egress half-link.
    pub fn set_egress(&mut self, link: LinkId) {
        self.out = Some(link);
    }

    fn mean_gap(&self) -> Duration {
        Duration::from_secs_f64(self.packet_bytes as f64 * 8.0 / self.rate.as_bps() as f64)
    }

    fn next_gap(&mut self) -> Duration {
        match self.process {
            ArrivalProcess::Cbr => self.mean_gap(),
            ArrivalProcess::Poisson => {
                Duration::from_secs_f64(self.rng.exponential(self.mean_gap().as_secs_f64()))
            }
        }
    }
}

impl Agent for TrafficSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start, 0);
    }

    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
        // Open loop: ignores everything it receives.
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if now >= self.stop {
            return;
        }
        if let Some(out) = self.out {
            let me = ctx.self_id();
            ctx.send(
                out,
                Packet::opaque(self.flow, me, self.sink, self.packet_bytes),
            );
            self.sent += 1;
        }
        let gap = self.next_gap();
        ctx.set_timer(now + gap, 0);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A sink that counts what it receives (the far end of a traffic source).
#[derive(Default)]
pub struct TrafficSink {
    /// Packets received.
    pub received: u64,
    /// Bytes received.
    pub bytes: u64,
}

impl TrafficSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Agent for TrafficSink {
    fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx<'_>) {
        self.received += 1;
        self.bytes += u64::from(pkt.size);
    }
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::Sim;

    fn build(process: ArrivalProcess, rate_mbps: u64, secs: u64) -> (Sim, NodeId, u64) {
        let mut sim = Sim::new(9);
        let sink = sim.add_agent(Box::new(TrafficSink::new()));
        let rng = sim.fork_rng(0xBEEF);
        let src = sim.add_agent(Box::new(TrafficSource::new(
            FlowId(99),
            sink,
            Bandwidth::from_mbps(rate_mbps),
            1_250,
            process,
            SimTime::ZERO,
            SimTime::from_secs(secs),
            rng,
        )));
        let link = sim.add_half_link(
            src,
            sink,
            LinkSpec::clean(Bandwidth::from_mbps(1000), Duration::from_millis(1)),
        );
        sim.agent_mut::<TrafficSource>(src).set_egress(link);
        sim.run_until(SimTime::from_secs(secs + 1));
        let got = sim.agent::<TrafficSink>(sink).bytes;
        (sim, sink, got)
    }

    #[test]
    fn cbr_hits_target_rate() {
        // 10 Mbps for 2 s = 2.5 MB.
        let (_, _, bytes) = build(ArrivalProcess::Cbr, 10, 2);
        let expect = 2.5e6;
        assert!(
            (bytes as f64 - expect).abs() / expect < 0.01,
            "bytes {bytes} vs expect {expect}"
        );
    }

    #[test]
    fn poisson_hits_target_rate_on_average() {
        let (_, _, bytes) = build(ArrivalProcess::Poisson, 10, 10);
        let expect = 12.5e6;
        assert!(
            (bytes as f64 - expect).abs() / expect < 0.05,
            "bytes {bytes} vs expect {expect}"
        );
    }

    #[test]
    fn poisson_is_burstier_than_cbr() {
        // Compare inter-arrival variance at the sink via a tiny custom run.
        let gaps = |process: ArrivalProcess| -> f64 {
            let mut sim = Sim::new(5);
            let sink = sim.add_agent(Box::new(TrafficSink::new()));
            let rng = sim.fork_rng(1);
            let src = sim.add_agent(Box::new(TrafficSource::new(
                FlowId(1),
                sink,
                Bandwidth::from_mbps(5),
                1_250,
                process,
                SimTime::ZERO,
                SimTime::from_secs(5),
                rng,
            )));
            let link = sim.add_half_link(
                src,
                sink,
                LinkSpec::clean(Bandwidth::from_gbps(10), Duration::ZERO),
            );
            sim.agent_mut::<TrafficSource>(src).set_egress(link);
            // Sample timer cadence via the source's own send count over
            // sub-intervals.
            let mut counts = Vec::new();
            for k in 1..=50u64 {
                sim.run_until(SimTime::from_millis(k * 100));
                counts.push(sim.agent::<TrafficSource>(src).sent);
            }
            let per: Vec<f64> = counts.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = per.iter().sum::<f64>() / per.len() as f64;
            per.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / per.len() as f64
        };
        assert!(gaps(ArrivalProcess::Poisson) > gaps(ArrivalProcess::Cbr) * 2.0);
    }

    #[test]
    fn respects_stop_time() {
        let (sim, _, _) = build(ArrivalProcess::Cbr, 10, 1);
        // No events should remain long after stop.
        assert!(sim.now() >= SimTime::from_secs(1));
    }
}
