//! Fleet workloads: open-loop flow arrivals over heavy-tailed sizes.
//!
//! A fleet cell models "many users behind one bottleneck": flows arrive
//! as an open-loop Poisson process (arrivals don't wait for earlier flows
//! to finish, exactly like independent users clicking links) and each
//! flow draws its size from a heavy-tailed distribution. The offered
//! load is calibrated analytically — `rate = load × bottleneck / mean
//! flow size` — so a `load = 0.6` cell offers 60% of the bottleneck's
//! capacity in expectation regardless of the size distribution chosen.
//!
//! Determinism: arrival gaps and flow sizes come from two *labelled* RNG
//! substreams forked off the cell seed ([`SimRng::fork_labeled`] depends
//! only on parent seed and label, not on draw order), so the generated
//! flow sequence is a pure function of `(workload, seed)` — byte-identical
//! at any worker count, any scheduler, any cache state.

use crate::flows::SizeDistribution;
use netsim::{Bandwidth, SimRng, SimTime};

/// Substream label for the arrival-gap draws.
const LABEL_ARRIVALS: u64 = 0x000F_1EE7_0001;
/// Substream label for the flow-size draws.
const LABEL_SIZES: u64 = 0x000F_1EE7_0002;

/// A fleet workload: how many flows arrive, how fast, and how big.
#[derive(Debug, Clone, Copy)]
pub struct FleetWorkload {
    /// Flow-size distribution.
    pub sizes: SizeDistribution,
    /// Offered load as a fraction of the bottleneck (0.0..1.0 for a
    /// stable system; values ≥ 1 overload it).
    pub load: f64,
    /// The bottleneck rate the load is calibrated against.
    pub bottleneck: Bandwidth,
    /// Total flows to generate.
    pub n_flows: u64,
}

impl FleetWorkload {
    /// A web-browsing fleet at `load` against `bottleneck`.
    pub fn web(load: f64, bottleneck: Bandwidth, n_flows: u64) -> Self {
        FleetWorkload {
            sizes: SizeDistribution::web(),
            load,
            bottleneck,
            n_flows,
        }
    }

    /// Mean flow arrival rate (flows per second) that offers
    /// `load × bottleneck` bytes per second in expectation.
    pub fn arrival_rate(&self) -> f64 {
        self.load * self.bottleneck.bytes_per_sec() / self.sizes.mean_bytes()
    }

    /// The lazy, deterministic arrival sequence for one cell seed.
    pub fn arrivals(&self, seed: u64) -> FleetArrivals {
        let root = SimRng::new(seed);
        FleetArrivals {
            gaps: root.fork_labeled(LABEL_ARRIVALS),
            sizes_rng: root.fork_labeled(LABEL_SIZES),
            sizes: self.sizes,
            mean_gap_secs: 1.0 / self.arrival_rate(),
            clock_secs: 0.0,
            remaining: self.n_flows,
        }
    }

    /// Canonical parameter string for cache identity: every field that
    /// influences the generated flow sequence.
    pub fn canonical_params(&self) -> String {
        let sizes = match self.sizes {
            SizeDistribution::Fixed(s) => format!("fixed:{s}"),
            SizeDistribution::BoundedPareto { alpha, min, max } => {
                format!("bpareto:a={alpha}:lo={min}:hi={max}")
            }
            SizeDistribution::LogNormal { median, sigma } => {
                format!("lognorm:med={median}:sigma={sigma}")
            }
        };
        format!(
            "fleet sizes={sizes} load={} btlneck={}Mbps flows={}",
            self.load,
            self.bottleneck.as_mbps_f64(),
            self.n_flows
        )
    }
}

/// One flow arrival: when it starts and how many bytes it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowArrival {
    /// Arrival instant (relative to the cell's t = 0).
    pub at: SimTime,
    /// Flow size in bytes.
    pub bytes: u64,
}

/// Lazy iterator over a cell's flow arrivals — O(1) memory however many
/// flows the cell generates.
#[derive(Debug, Clone)]
pub struct FleetArrivals {
    gaps: SimRng,
    sizes_rng: SimRng,
    sizes: SizeDistribution,
    mean_gap_secs: f64,
    clock_secs: f64,
    remaining: u64,
}

impl Iterator for FleetArrivals {
    type Item = FlowArrival;

    fn next(&mut self) -> Option<FlowArrival> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.clock_secs += self.gaps.exponential(self.mean_gap_secs);
        Some(FlowArrival {
            at: SimTime::from_secs_f64(self.clock_secs),
            bytes: self.sizes.sample(&mut self.sizes_rng).max(1),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{KB, MB};
    use std::time::Duration;

    fn demo() -> FleetWorkload {
        FleetWorkload::web(0.6, Bandwidth::from_mbps(45), 2_000)
    }

    #[test]
    fn arrival_rate_matches_load_calibration() {
        let w = demo();
        let expect = 0.6 * 45e6 / 8.0 / w.sizes.mean_bytes();
        assert!((w.arrival_rate() - expect).abs() < 1e-9);
        // ~47 KB mean web flow on 45 Mbps at 0.6 load ⇒ ~70 flows/s.
        assert!(w.arrival_rate() > 40.0 && w.arrival_rate() < 120.0);
    }

    #[test]
    fn arrivals_are_deterministic_and_ordered() {
        let w = demo();
        let a: Vec<FlowArrival> = w.arrivals(7).collect();
        let b: Vec<FlowArrival> = w.arrivals(7).collect();
        assert_eq!(a, b, "same seed must regenerate identically");
        assert_eq!(a.len(), 2_000);
        assert!(a.windows(2).all(|p| p[0].at <= p[1].at));
        assert!(a.iter().all(|f| (10 * KB..=20 * MB).contains(&f.bytes)));
        let c: Vec<FlowArrival> = w.arrivals(8).collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn substreams_are_independent_of_draw_order() {
        // Consuming arrivals must not perturb the size stream: sizes come
        // from a labelled fork keyed only by (seed, label).
        let w = demo();
        let sizes_direct: Vec<u64> = {
            let mut rng = SimRng::new(7).fork_labeled(0x000F_1EE7_0002);
            (0..50).map(|_| w.sizes.sample(&mut rng).max(1)).collect()
        };
        let sizes_via_iter: Vec<u64> = w.arrivals(7).take(50).map(|f| f.bytes).collect();
        assert_eq!(sizes_direct, sizes_via_iter);
    }

    #[test]
    fn mean_interarrival_converges() {
        let w = demo();
        let arrivals: Vec<FlowArrival> = w.arrivals(3).collect();
        let span = arrivals.last().unwrap().at.saturating_since(SimTime::ZERO);
        let measured_rate = arrivals.len() as f64 / span.as_secs_f64();
        let rel = (measured_rate - w.arrival_rate()).abs() / w.arrival_rate();
        assert!(
            rel < 0.10,
            "measured {measured_rate} vs {}",
            w.arrival_rate()
        );
        assert!(span > Duration::from_secs(10), "cell spans real time");
    }
}
